//===- adore/Oracle.cpp - Oracle strategies ---------------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/Oracle.h"

using namespace adore;

OracleStrategy::~OracleStrategy() = default;

std::optional<PullChoice> RandomOracle::choosePull(const Semantics &Sem,
                                                   const AdoreState &St,
                                                   NodeId Nid) {
  if (R.nextChance(FailPermille, 1000))
    return std::nullopt;
  std::vector<PullChoice> Choices = Sem.enumeratePullChoices(St, Nid);
  if (Choices.empty())
    return std::nullopt;
  return R.pick(Choices);
}

std::optional<PushChoice> RandomOracle::choosePush(const Semantics &Sem,
                                                   const AdoreState &St,
                                                   NodeId Nid) {
  if (R.nextChance(FailPermille, 1000))
    return std::nullopt;
  std::vector<PushChoice> Choices = Sem.enumeratePushChoices(St, Nid);
  if (Choices.empty())
    return std::nullopt;
  return R.pick(Choices);
}

std::optional<PullChoice> ScriptedOracle::choosePull(const Semantics &Sem,
                                                     const AdoreState &St,
                                                     NodeId Nid) {
  assert(!Pulls.empty() && "scripted oracle out of pull choices");
  PullChoice Choice = std::move(Pulls.front());
  Pulls.pop_front();
  return Choice;
}

std::optional<PushChoice> ScriptedOracle::choosePush(const Semantics &Sem,
                                                     const AdoreState &St,
                                                     NodeId Nid) {
  assert(!Pushes.empty() && "scripted oracle out of push choices");
  PushChoice Choice = std::move(Pushes.front());
  Pushes.pop_front();
  return Choice;
}
