//===- adore/State.h - The Adore abstract state ---------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sigma_Adore (Fig. 6): a cache tree paired with the TimeMap recording
/// the largest timestamp each replica has observed, plus the setTimes and
/// isLeader helpers of Fig. 9.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_STATE_H
#define ADORE_ADORE_STATE_H

#include "adore/CacheTree.h"

#include <utility>
#include <vector>

namespace adore {

/// The paper's TimeMap: N_nid -> N_time with default 0. Backed by a
/// sorted vector so iteration (and therefore fingerprinting) is
/// deterministic.
class TimeMap {
public:
  /// Largest timestamp \p Nid has observed (0 if never recorded).
  Time get(NodeId Nid) const;

  /// Records that \p Nid observed \p T (unconditional overwrite; the
  /// oracle validity rules guarantee monotonicity).
  void set(NodeId Nid, Time T);

  /// The largest timestamp observed by any member of \p Q (0 if none).
  Time maxOver(const NodeSet &Q) const;

  /// The largest timestamp observed by anyone.
  Time maxOverall() const;

  /// Streams the non-zero entries into a fingerprint hasher or canonical
  /// encoder. Zero entries are semantically absent; skipping them makes
  /// states that only differ by explicit-vs-implicit zeros identical.
  template <typename SinkT> void addToSink(SinkT &S) const {
    size_t NonZero = 0;
    for (const auto &[Nid, T] : Entries)
      if (T != 0)
        ++NonZero;
    S.addU64(NonZero);
    for (const auto &[Nid, T] : Entries) {
      if (T == 0)
        continue;
      S.addU64(Nid);
      S.addU64(T);
    }
  }

  bool operator==(const TimeMap &RHS) const {
    return Entries == RHS.Entries;
  }

  /// Read-only access to the sorted (node, time) entries.
  const std::vector<std::pair<NodeId, Time>> &entries() const {
    return Entries;
  }

private:
  std::vector<std::pair<NodeId, Time>> Entries;
};

/// The full Adore state.
struct AdoreState {
  CacheTree Tree;
  TimeMap Times;

  /// Builds the initial state: genesis root with configuration
  /// \p RootConf supported by mbrs(RootConf), everyone at time 0.
  AdoreState(const ReconfigScheme &Scheme, Config RootConf);

  /// isLeader (Fig. 9): \p Nid still believes it leads round \p T.
  bool isLeader(NodeId Nid, Time T) const { return Times.get(Nid) == T; }

  /// setTimes (Fig. 9): every member of \p Q observed \p T.
  void setTimes(const NodeSet &Q, Time T) {
    for (NodeId S : Q)
      Times.set(S, T);
  }

  /// Structure-based state fingerprint (tree canonical form + times).
  uint64_t fingerprint() const;

  /// Exact canonical byte encoding covering the same data as the
  /// fingerprint (shared sink traversal): equal encodings imply equal
  /// abstract states. Consumed by the audit layer to certify that
  /// fingerprint deduplication never dropped a distinct state.
  std::string encode() const;

  /// Multi-line diagnostic rendering.
  std::string dump() const;
};

} // namespace adore

#endif // ADORE_ADORE_STATE_H
