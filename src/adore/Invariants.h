//===- adore/Invariants.h - Safety properties and lemmas ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable checkers for the paper's safety property (Definition 4.1)
/// and its supporting lemmas (Appendix B). Where the paper proves each
/// statement once and for all in Coq, we check them on every state the
/// model checker visits and on millions of randomized executions: a
/// violation of any lemma on any reachable state falsifies the
/// corresponding theorem, and exhausting the bounded space without
/// violation is the executable analog of the proof.
///
/// Each checker returns std::nullopt on success or a human-readable
/// description of the violated instance.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_INVARIANTS_H
#define ADORE_ADORE_INVARIANTS_H

#include "adore/CacheTree.h"

#include <optional>
#include <string>

namespace adore {

/// Definition 4.1 / Theorem B.9 (replicated state safety): every pair of
/// CCaches lies on a single branch, i.e. one is an ancestor of the other.
std::optional<std::string> checkReplicatedStateSafety(const CacheTree &Tree);

/// Lemma B.1 (descendant order): every non-root cache is greater than its
/// parent under the > order.
std::optional<std::string> checkDescendantOrder(const CacheTree &Tree);

/// Lemmas B.2 / B.5 (leader time uniqueness): two distinct ECaches with
/// rdist <= \p MaxRdist never share a timestamp. MaxRdist = 0 is B.2,
/// 1 is B.5.
std::optional<std::string>
checkLeaderTimeUniqueness(const CacheTree &Tree, size_t MaxRdist);

/// Theorems B.3 / B.6 (election-commit order): for a CCache C and an
/// ECache E with E > C and rdist(E, C) <= \p MaxRdist, E descends from C.
std::optional<std::string>
checkElectionCommitOrder(const CacheTree &Tree, size_t MaxRdist);

/// Lemma B.8 / Lemma 4.4 (CCache in RCache fork): two forking RCaches
/// with rdist 0 enclose a CCache below their common ancestor on one of
/// the two sides.
std::optional<std::string> checkCCacheInRCacheFork(const CacheTree &Tree);

/// Selects which of the above to evaluate.
struct InvariantSelection {
  bool Safety = true;
  bool DescendantOrder = true;
  bool LeaderTimeUniqueness = true;
  bool ElectionCommitOrder = true;
  bool CCacheInRCacheFork = true;
};

/// Runs the selected checkers and returns the first violation found.
std::optional<std::string>
checkInvariants(const CacheTree &Tree,
                const InvariantSelection &Sel = InvariantSelection());

/// Convenience: only the headline safety property (Definition 4.1).
/// Equivalent to checkReplicatedStateSafety but named for call sites
/// that specifically want the theorem being reproduced.
inline std::optional<std::string> checkSafetyOnly(const CacheTree &Tree) {
  return checkReplicatedStateSafety(Tree);
}

} // namespace adore

#endif // ADORE_ADORE_INVARIANTS_H
