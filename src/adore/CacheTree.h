//===- adore/CacheTree.h - The Adore cache tree ---------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The append-only cache tree at the heart of the Adore state: a map from
/// cache ids to (parent id, cache) per Fig. 6, with the tree-growing
/// functions addLeaf and insertBtw, the ancestor relation, the selection
/// functions mostRecent / activeCache / lastCommit (Fig. 9), and the
/// rdist metric of Definition 4.2.
///
/// The root (id 0) is a genesis CCache carrying the initial configuration
/// conf_0 and supported by all of conf_0's members. This makes
/// mostRecent/lastCommit total from the start and means R3 forces a fresh
/// leader to commit at its own timestamp before reconfiguring — exactly
/// Raft's new-leader no-op barrier.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_CACHETREE_H
#define ADORE_ADORE_CACHETREE_H

#include "adore/Cache.h"
#include "support/Hashing.h"

#include <algorithm>
#include <string>
#include <vector>

namespace adore {

/// The append-only tree of caches. Value-semantic and cheap to copy for
/// the small trees explored per state (copy-on-branch in the checker).
class CacheTree {
public:
  /// Builds a tree containing only the genesis root CCache with
  /// configuration \p RootConf and supporter set \p RootSupporters
  /// (normally mbrs(RootConf)).
  CacheTree(Config RootConf, NodeSet RootSupporters);

  /// Number of caches including the root.
  size_t size() const { return Caches.size(); }

  const Cache &cache(CacheId Id) const {
    assert(Id < Caches.size() && "cache id out of range");
    return Caches[Id];
  }

  const Cache &root() const { return Caches[RootCacheId]; }

  /// Child ids of \p Id in creation order.
  const std::vector<CacheId> &children(CacheId Id) const {
    assert(Id < Children.size() && "cache id out of range");
    return Children[Id];
  }

  /// Appends \p C as a new leaf child of \p Parent; returns the fresh id
  /// (the paper's addLeaf).
  CacheId addLeaf(CacheId Parent, Cache C);

  /// Inserts \p C between \p Parent and Parent's current children: the
  /// children are re-parented onto the new cache (the paper's insertBtw,
  /// used by push so that partially-failed suffixes stay viable).
  CacheId insertBtw(CacheId Parent, Cache C);

  /// True iff \p Ancestor is a strict ancestor of \p Descendant (the
  /// paper's arrow relation).
  bool isAncestor(CacheId Ancestor, CacheId Descendant) const;

  /// isAncestor or equality.
  bool isAncestorOrSelf(CacheId Ancestor, CacheId Descendant) const;

  /// True iff one of the two is an ancestor-or-self of the other, i.e.
  /// the caches lie on a single branch.
  bool onSameBranch(CacheId A, CacheId B) const;

  /// Nearest common ancestor.
  CacheId lowestCommonAncestor(CacheId A, CacheId B) const;

  /// Distance (#edges) from the root.
  size_t depth(CacheId Id) const;

  /// Ids on the path root -> Id, inclusive, in root-first order.
  std::vector<CacheId> branchOf(CacheId Id) const;

  /// Definition 4.2: the number of RCaches strictly between \p A and
  /// \p B on the tree path through their nearest common ancestor,
  /// excluding the endpoints.
  size_t rdist(CacheId A, CacheId B) const;

  /// The rdist of the whole tree: the maximum rdist over all cache pairs.
  size_t treeRdist() const;

  /// mostRecent (Fig. 9): the greatest cache whose state some member of
  /// \p Q holds. "Holding" means: own invocations/elections (caller) and
  /// acknowledged commits (supporters); an election *vote* is excluded —
  /// see the rationale in CacheTree.cpp. Returns InvalidCacheId when Q
  /// holds nothing (possible only if Q misses every supporter set
  /// including the root's).
  CacheId mostRecent(const NodeSet &Q) const;

  /// activeCache (Fig. 9): the greatest cache called by \p Nid, or
  /// InvalidCacheId if \p Nid never created a cache.
  CacheId activeCache(NodeId Nid) const;

  /// lastCommit (Fig. 9): the greatest CCache supported by \p Nid, or
  /// InvalidCacheId.
  CacheId lastCommit(NodeId Nid) const;

  /// The greatest cache whose supporters include \p Nid; this identifies
  /// the branch a replica has observed (used by the refinement relation's
  /// toLog, Fig. 17).
  CacheId observedCache(NodeId Nid) const;

  /// The greatest CCache in the whole tree, or the root.
  CacheId maxCommit() const;

  /// The committed log: methods/reconfigs that are ancestors of (or equal
  /// to) the parent chain of the greatest CCache, root-first. Under
  /// replicated state safety this is the unique agreed command sequence.
  std::vector<CacheId> committedLog() const;

  /// The union of mbrs over every configuration in the tree: all node ids
  /// that have ever been configuration members.
  NodeSet universe(const ReconfigScheme &Scheme) const;

  /// Stop-the-world support (Section 8): discards every cache that is
  /// neither an ancestor-or-self nor a descendant of \p Tip, rebuilding
  /// the tree with fresh contiguous ids. This models Stoppable-Paxos
  /// style reconfiguration, where the committed log is copied to a new
  /// cluster and all other speculative state dies with the old one.
  /// Returns the new id of \p Tip. Invalidates all previously held
  /// CacheIds.
  CacheId pruneToBranch(CacheId Tip);

  /// Structure-based fingerprint that is invariant under cache-id
  /// relabeling: hashes payloads plus the multiset of child fingerprints,
  /// so interleavings producing isomorphic trees deduplicate in the
  /// checker.
  uint64_t canonicalFingerprint() const;

  /// Exact canonical byte encoding under the same equivalence the
  /// fingerprint targets (cache-id relabeling and sibling order do not
  /// matter). Unlike the fingerprint it is injective: equal encodings
  /// imply isomorphic trees. Used by the collision audit layer.
  std::string canonicalEncoding() const;

  /// Streams the canonical form of the whole tree into any Hashing.h
  /// sink; canonicalFingerprint/canonicalEncoding are its two
  /// instantiations, guaranteed to cover the same data because they share
  /// this traversal.
  template <typename SinkT> void addToSink(SinkT &S) const {
    addSubtreeToSink(RootCacheId, S);
  }

  /// ASCII rendering of the tree for diagnostics and examples.
  std::string dump() const;

  /// Applies \p Fn to every cache (including the root).
  template <typename FnT> void forEach(FnT &&Fn) const {
    for (const Cache &C : Caches)
      Fn(C);
  }

private:
  /// Streams cache \p Id's payload followed by the sorted digests of its
  /// child subtrees. Sorting makes the result independent of sibling
  /// creation order; duplicates are kept so multiplicities still count.
  template <typename SinkT>
  void addSubtreeToSink(CacheId Id, SinkT &S) const {
    const Cache &C = Caches[Id];
    S.addByte(static_cast<uint8_t>(C.Kind));
    S.addU64(C.Caller);
    S.addU64(C.T);
    S.addU64(C.V);
    S.addU64(C.Method);
    C.Conf.addToSink(S);
    S.addNodeSet(C.Supporters);
    std::vector<decltype(sinkSubResult(S))> Kids;
    Kids.reserve(Children[Id].size());
    for (CacheId Kid : Children[Id]) {
      SinkT Sub;
      addSubtreeToSink(Kid, Sub);
      Kids.push_back(sinkSubResult(Sub));
    }
    std::sort(Kids.begin(), Kids.end());
    S.addU64(Kids.size());
    for (const auto &K : Kids)
      addSubResult(S, K);
  }

  void dumpSubtree(CacheId Id, const std::string &Prefix, bool Last,
                   std::string &Out) const;

  std::vector<Cache> Caches;
  std::vector<std::vector<CacheId>> Children;
};

} // namespace adore

#endif // ADORE_ADORE_CACHETREE_H
