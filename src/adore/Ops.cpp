//===- adore/Ops.cpp - Adore operational semantics -------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/Ops.h"

using namespace adore;

//===----------------------------------------------------------------------===//
// Side conditions
//===----------------------------------------------------------------------===//

bool Semantics::checkR2(const CacheTree &Tree, CacheId C) const {
  // Scan the branch from C (inclusive) towards the root: meeting an
  // RCache before any CCache means that RCache has no commit between
  // itself and C, i.e. it is still uncommitted on the active branch.
  // Meeting a CCache first discharges every RCache above it as well
  // (that CCache lies between them and C). C itself must be included:
  // right after a reconfig the active cache *is* the pending RCache.
  for (CacheId Cur = C;; Cur = Tree.cache(Cur).Parent) {
    const Cache &A = Tree.cache(Cur);
    if (A.isCommit())
      return true;
    if (A.isReconfig())
      return false;
    if (Cur == RootCacheId)
      return true;
  }
}

bool Semantics::checkR3(const CacheTree &Tree, CacheId C) const {
  // Scan the branch from C (inclusive) towards the root for a CCache at
  // C's timestamp. Inclusive because a leader's active cache right after
  // its barrier commit is that CCache itself.
  Time T = Tree.cache(C).T;
  for (CacheId Cur = C;; Cur = Tree.cache(Cur).Parent) {
    const Cache &A = Tree.cache(Cur);
    if (A.isCommit() && A.T == T)
      return true;
    if (Cur == RootCacheId)
      return false;
  }
}

bool Semantics::canReconf(const CacheTree &Tree, CacheId C,
                          const Config &Ncf) const {
  // Under cold semantics a proposal chains off the last *committed*
  // configuration; under hot semantics off the cache's own (inherited,
  // possibly speculative) one.
  const Config From =
      Opts.ColdReconfig ? effectiveConf(Tree, C) : Tree.cache(C).Conf;
  if (Opts.EnforceR1 && !Scheme.r1Plus(From, Ncf))
    return false;
  if (Opts.EnforceR2 && !checkR2(Tree, C))
    return false;
  if (Opts.EnforceR3 && !checkR3(Tree, C))
    return false;
  return Scheme.isValidConfig(Ncf);
}

Config Semantics::effectiveConf(const CacheTree &Tree, CacheId C) const {
  if (!Opts.ColdReconfig)
    return Tree.cache(C).Conf;
  // Walk C's branch from the deepest cache upward; the first RCache that
  // has a commit certificate below it (anywhere in the tree — Def. 4.1
  // keeps certificates linear) supplies the governing configuration.
  for (CacheId Cur = C;; Cur = Tree.cache(Cur).Parent) {
    const Cache &A = Tree.cache(Cur);
    if (A.isReconfig()) {
      bool Committed = false;
      Tree.forEach([&](const Cache &X) {
        if (!Committed && X.isCommit() && Tree.isAncestor(Cur, X.Id))
          Committed = true;
      });
      if (Committed)
        return A.Conf;
    }
    if (Cur == RootCacheId)
      return Tree.root().Conf;
  }
}

size_t Semantics::uncommittedWindow(const CacheTree &Tree,
                                    CacheId C) const {
  size_t Window = 0;
  for (CacheId Cur = C;; Cur = Tree.cache(Cur).Parent) {
    const Cache &A = Tree.cache(Cur);
    if (A.isCommit())
      return Window;
    Window += A.isCommittable();
    if (Cur == RootCacheId)
      return Window;
  }
}

bool Semantics::canCommit(const AdoreState &St, CacheId C,
                          NodeId Nid) const {
  const Cache &Target = St.Tree.cache(C);
  if (!Target.isCommittable())
    return false;
  if (Target.Caller != Nid)
    return false;
  if (!St.isLeader(Nid, Target.T))
    return false;
  CacheId Last = St.Tree.lastCommit(Nid);
  if (Last == InvalidCacheId)
    return true;
  return cacheGreater(Target, St.Tree.cache(Last));
}

bool Semantics::isValidPullChoice(const AdoreState &St, NodeId Nid,
                                  const PullChoice &Choice) const {
  if (!Choice.Q.contains(Nid))
    return false;
  CacheId MaxId = St.Tree.mostRecent(Choice.Q);
  if (MaxId == InvalidCacheId)
    return false;
  if (!Choice.Q.isSubsetOf(
          Scheme.mbrs(effectiveConf(St.Tree, MaxId))))
    return false;
  for (NodeId S : Choice.Q)
    if (St.Times.get(S) >= Choice.T)
      return false;
  return true;
}

bool Semantics::isValidPushChoice(const AdoreState &St, NodeId Nid,
                                  const PushChoice &Choice) const {
  if (Choice.Target == InvalidCacheId ||
      Choice.Target >= St.Tree.size())
    return false;
  if (!canCommit(St, Choice.Target, Nid))
    return false;
  if (!Choice.Q.contains(Nid))
    return false;
  if (!Choice.Q.isSubsetOf(
          Scheme.mbrs(effectiveConf(St.Tree, Choice.Target))))
    return false;
  const Cache &Target = St.Tree.cache(Choice.Target);
  for (NodeId S : Choice.Q)
    if (St.Times.get(S) > Target.T)
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Transitions
//===----------------------------------------------------------------------===//

bool Semantics::pull(AdoreState &St, NodeId Nid,
                     const PullChoice &Choice) const {
  assert(isValidPullChoice(St, Nid, Choice) && "invalid pull choice");
  CacheId MaxId = St.Tree.mostRecent(Choice.Q);
  const Cache &Max = St.Tree.cache(MaxId);
  bool QOk = Scheme.isQuorum(Choice.Q, effectiveConf(St.Tree, MaxId));
  Config Conf = Max.Conf;
  St.setTimes(Choice.Q, Choice.T);
  if (!QOk)
    return true; // Times moved: a failed election still preempts.
  Cache New;
  New.Kind = CacheKind::Election;
  New.Caller = Nid;
  New.T = Choice.T;
  New.V = 0;
  New.Conf = std::move(Conf);
  New.Supporters = Choice.Q;
  St.Tree.addLeaf(MaxId, std::move(New));
  return true;
}

bool Semantics::canInvoke(const AdoreState &St, NodeId Nid) const {
  CacheId Active = St.Tree.activeCache(Nid);
  if (Active == InvalidCacheId)
    return false;
  if (Opts.ColdReconfig &&
      uncommittedWindow(St.Tree, Active) >= Opts.Alpha)
    return false; // The speculation window is full.
  return St.isLeader(Nid, St.Tree.cache(Active).T);
}

bool Semantics::invoke(AdoreState &St, NodeId Nid, MethodId Method) const {
  if (!canInvoke(St, Nid))
    return false; // Preempted, never elected, or window full.
  CacheId Active = St.Tree.activeCache(Nid);
  const Cache &A = St.Tree.cache(Active);
  Cache New;
  New.Kind = CacheKind::Method;
  New.Caller = Nid;
  New.T = A.T;
  New.V = A.V + 1;
  New.Conf = A.Conf;
  New.Supporters = NodeSet{Nid};
  New.Method = Method;
  St.Tree.addLeaf(Active, std::move(New));
  return true;
}

bool Semantics::reconfig(AdoreState &St, NodeId Nid,
                         const Config &Ncf) const {
  if (!canInvoke(St, Nid))
    return false;
  CacheId Active = St.Tree.activeCache(Nid);
  const Cache &A = St.Tree.cache(Active);
  if (!canReconf(St.Tree, Active, Ncf))
    return false;
  Cache New;
  New.Kind = CacheKind::Reconfig;
  New.Caller = Nid;
  New.T = A.T;
  New.V = A.V + 1;
  New.Conf = Ncf; // The RCache carries the *new* configuration.
  New.Supporters = NodeSet{Nid};
  St.Tree.addLeaf(Active, std::move(New));
  return true;
}

bool Semantics::push(AdoreState &St, NodeId Nid,
                     const PushChoice &Choice) const {
  assert(isValidPushChoice(St, Nid, Choice) && "invalid push choice");
  const Cache &Target = St.Tree.cache(Choice.Target);
  bool QOk =
      Scheme.isQuorum(Choice.Q, effectiveConf(St.Tree, Choice.Target));
  bool CommitsReconfig = Target.isReconfig();
  Cache New;
  New.Kind = CacheKind::Commit;
  New.Caller = Nid;
  New.T = Target.T;
  New.V = Target.V;
  New.Conf = Target.Conf;
  New.Supporters = Choice.Q;
  St.setTimes(Choice.Q, Target.T);
  if (!QOk)
    return true;
  CacheId Cert = St.Tree.insertBtw(Choice.Target, std::move(New));
  // Stop-the-world mode: committing a configuration change seals the old
  // cluster — only the committed branch survives the copy to the new
  // one. Note: committing an RCache transitively commits any RCache
  // ancestors too, so pruning at the certificate covers them all.
  if (CommitsReconfig && Opts.StopTheWorldReconfig)
    St.Tree.pruneToBranch(Cert);
  return true;
}

//===----------------------------------------------------------------------===//
// Enumeration
//===----------------------------------------------------------------------===//

std::vector<PullChoice>
Semantics::enumeratePullChoices(const AdoreState &St, NodeId Nid) const {
  std::vector<PullChoice> Out;
  NodeSet Universe = St.Tree.universe(Scheme);
  if (!Universe.contains(Nid))
    return Out;
  Universe.forAllSubsetsContaining(Nid, [&](const NodeSet &Q) {
    // Minimal fresh time, plus optional slack values. Timestamps are
    // only compared (never added), so choosing larger times merely
    // relabels behaviours; slack exists to double-check that claim
    // experimentally.
    Time Base = St.Times.maxOver(Q) + 1;
    for (unsigned Slack = 0; Slack <= Opts.TimeSlack; ++Slack) {
      PullChoice Choice{Q, Base + Slack};
      if (isValidPullChoice(St, Nid, Choice))
        Out.push_back(std::move(Choice));
    }
    return true;
  });
  return Out;
}

std::vector<PushChoice>
Semantics::enumeratePushChoices(const AdoreState &St, NodeId Nid) const {
  std::vector<PushChoice> Out;
  St.Tree.forEach([&](const Cache &C) {
    if (C.Caller != Nid || !canCommit(St, C.Id, Nid))
      return;
    NodeSet Members = Scheme.mbrs(C.Conf);
    Members.forAllSubsetsContaining(Nid, [&](const NodeSet &Q) {
      PushChoice Choice{Q, C.Id};
      if (isValidPushChoice(St, Nid, Choice))
        Out.push_back(std::move(Choice));
      return true;
    });
  });
  return Out;
}

std::vector<Config> Semantics::enumerateReconfigs(const AdoreState &St,
                                                  NodeId Nid) const {
  std::vector<Config> Out;
  if (!Scheme.allowsReconfig())
    return Out;
  CacheId Active = St.Tree.activeCache(Nid);
  if (Active == InvalidCacheId)
    return Out;
  const Cache &A = St.Tree.cache(Active);
  if (!St.isLeader(Nid, A.T))
    return Out;
  NodeSet Universe = St.Tree.universe(Scheme).unionWith(Opts.ExtraNodes);
  const Config From =
      Opts.ColdReconfig ? effectiveConf(St.Tree, Active) : A.Conf;
  for (Config &Ncf : Scheme.candidateReconfigs(From, Universe))
    if (canReconf(St.Tree, Active, Ncf))
      Out.push_back(std::move(Ncf));
  return Out;
}
