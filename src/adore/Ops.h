//===- adore/Ops.h - Adore operational semantics --------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four Adore operations (pull, invoke, reconfig, push) of Fig. 28,
/// their oracle-validity side conditions (Fig. 27), the R2/R3/canReconf
/// definitions (Fig. 25), and exhaustive enumeration of all valid oracle
/// choices.
///
/// The paper's oracles O_pull / O_push are nondeterministic choices of
/// supporter sets, timestamps, and target caches constrained by the
/// VALIDPULLORACLE / VALIDPUSHORACLE rules. We reify a concrete choice as
/// a PullChoice / PushChoice value; a Semantics object validates and
/// applies choices, and can enumerate every valid choice so the model
/// checker covers the oracle's entire behaviour space. Random and
/// scripted oracle strategies (Oracle.h) are built on the same
/// primitives.
///
/// The EnforceR1/R2/R3 toggles exist to reproduce the paper's negative
/// results: turning off R3 must let the checker rediscover the Raft
/// single-server membership bug (Fig. 4 / Fig. 12).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_OPS_H
#define ADORE_ADORE_OPS_H

#include "adore/State.h"

#include <vector>

namespace adore {

/// A successful O_pull choice: the supporter set Q and the new timestamp
/// T. The most-recent cache C_max and the quorum bit Q_ok are derived,
/// not chosen (Fig. 27).
struct PullChoice {
  NodeSet Q;
  Time T = 0;
};

/// A successful O_push choice: the supporter set Q and the MCache/RCache
/// to certify. Q_ok is derived.
struct PushChoice {
  NodeSet Q;
  CacheId Target = InvalidCacheId;
};

/// Feature toggles for ablation experiments. All on = the paper's model.
struct SemanticsOptions {
  /// Check R1+ in canReconf.
  bool EnforceR1 = true;
  /// Check R2 (no uncommitted RCache in the active branch).
  bool EnforceR2 = true;
  /// Check R3 (a CCache with the current timestamp in the active branch).
  bool EnforceR3 = true;
  /// Extra timestamp slack for pull enumeration: the enumerating oracle
  /// offers times max+1 .. max+1+TimeSlack instead of only the minimal
  /// fresh time. 0 applies the (sound) minimal-time symmetry reduction.
  unsigned TimeSlack = 0;
  /// Spare node ids available to join via reconfiguration, beyond the
  /// nodes already named by some configuration in the tree. Bounds the
  /// reconfiguration universe for enumeration.
  NodeSet ExtraNodes;
  /// Stop-the-world reconfiguration (Section 8): when a push commits an
  /// RCache, every cache off the committed branch is discarded — the
  /// model analog of Stoppable Paxos / WormSpace sealing, where the log
  /// is copied to a fresh cluster and old speculative state dies. Hot
  /// semantics (the paper's default) keeps the append-only tree.
  bool StopTheWorldReconfig = false;
  /// Cold ("easy") reconfiguration (Section 8 / Lamport et al. 2008):
  /// a configuration change governs quorums only once *committed*, and
  /// at most Alpha speculative caches may sit above the last commit of
  /// an active branch (the paper's two required changes to Adore).
  bool ColdReconfig = false;
  /// The speculation window for cold reconfiguration.
  unsigned Alpha = 3;
};

/// Executable Adore semantics for one scheme instantiation. Stateless
/// apart from the scheme reference and options; all state lives in
/// AdoreState values, so one Semantics can drive any number of states.
class Semantics {
public:
  Semantics(const ReconfigScheme &Scheme, SemanticsOptions Opts = {})
      : Scheme(Scheme), Opts(Opts) {}

  const ReconfigScheme &scheme() const { return Scheme; }
  const SemanticsOptions &options() const { return Opts; }

  //===--------------------------------------------------------------===//
  // Side conditions (Fig. 25 / Fig. 27)
  //===--------------------------------------------------------------===//

  /// R2: every RCache ancestor of \p C has a CCache between itself and
  /// \p C.
  bool checkR2(const CacheTree &Tree, CacheId C) const;

  /// R3: some CCache ancestor of \p C carries time(\p C).
  bool checkR3(const CacheTree &Tree, CacheId C) const;

  /// canReconf: R1+(conf(C), Ncf) and R2 and R3 (subject to the ablation
  /// toggles).
  bool canReconf(const CacheTree &Tree, CacheId C, const Config &Ncf) const;

  /// canCommit (Fig. 9): \p C is a committable cache called by \p Nid at
  /// its current leadership timestamp, newer than \p Nid's last commit.
  bool canCommit(const AdoreState &St, CacheId C, NodeId Nid) const;

  /// The configuration governing quorum checks at \p C: the cache's own
  /// configuration under hot semantics; under ColdReconfig, the newest
  /// *committed* RCache on C's branch (or the genesis configuration).
  Config effectiveConf(const CacheTree &Tree, CacheId C) const;

  /// Number of committable (M/R) caches on C's branch above its last
  /// commit certificate, including C itself — the speculative window
  /// that ColdReconfig bounds by Alpha.
  size_t uncommittedWindow(const CacheTree &Tree, CacheId C) const;

  /// VALIDPULLORACLE: nid in Q, Q within mbrs(conf(mostRecent(Q))), and
  /// T strictly above every supporter's observed time.
  bool isValidPullChoice(const AdoreState &St, NodeId Nid,
                         const PullChoice &Choice) const;

  /// VALIDPUSHORACLE: canCommit plus supporter validity and the
  /// times <= time(target) condition.
  bool isValidPushChoice(const AdoreState &St, NodeId Nid,
                         const PushChoice &Choice) const;

  //===--------------------------------------------------------------===//
  // Transitions (Fig. 28). Each returns true iff the state changed.
  // Choices must be valid (asserted); the NoOp rules correspond to the
  // oracle returning Fail and are represented by simply not calling.
  //===--------------------------------------------------------------===//

  /// PULLOK: records the supporters' new time and, if Q is a quorum of
  /// the most recent cache's configuration, grows an ECache under it.
  bool pull(AdoreState &St, NodeId Nid, const PullChoice &Choice) const;

  /// INVOKEOK: appends an MCache to the caller's active cache; returns
  /// false (METHODFAILURE) when the caller has no active cache or has
  /// been preempted.
  bool invoke(AdoreState &St, NodeId Nid, MethodId Method) const;

  /// RECONFIGOK: like invoke but appends an RCache carrying \p Ncf,
  /// guarded by canReconf.
  bool reconfig(AdoreState &St, NodeId Nid, const Config &Ncf) const;

  /// PUSHOK: records supporter times and, if Q is a quorum of the
  /// target's configuration, inserts a CCache between the target and its
  /// children.
  bool push(AdoreState &St, NodeId Nid, const PushChoice &Choice) const;

  //===--------------------------------------------------------------===//
  // Oracle-choice enumeration (the checker's successor generator)
  //===--------------------------------------------------------------===//

  /// Every valid PullChoice for \p Nid, over supporter sets drawn from
  /// the tree's node universe. Timestamps follow the minimal-fresh-time
  /// reduction plus Opts.TimeSlack extra values.
  std::vector<PullChoice> enumeratePullChoices(const AdoreState &St,
                                               NodeId Nid) const;

  /// Every valid PushChoice for \p Nid.
  std::vector<PushChoice> enumeratePushChoices(const AdoreState &St,
                                               NodeId Nid) const;

  /// True iff invoke would succeed for \p Nid right now.
  bool canInvoke(const AdoreState &St, NodeId Nid) const;

  /// Every new configuration \p Nid could legally propose right now
  /// (candidate configs filtered by canReconf).
  std::vector<Config> enumerateReconfigs(const AdoreState &St,
                                         NodeId Nid) const;

private:
  const ReconfigScheme &Scheme;
  SemanticsOptions Opts;
};

} // namespace adore

#endif // ADORE_ADORE_OPS_H
