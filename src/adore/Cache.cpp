//===- adore/Cache.cpp - Cache tree node variants -------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/Cache.h"

#include "support/Debug.h"

using namespace adore;

const char *adore::cacheKindName(CacheKind Kind) {
  switch (Kind) {
  case CacheKind::Election:
    return "E";
  case CacheKind::Method:
    return "M";
  case CacheKind::Reconfig:
    return "R";
  case CacheKind::Commit:
    return "C";
  }
  ADORE_UNREACHABLE("unknown cache kind");
}

std::string Cache::str() const {
  std::string Out = cacheKindName(Kind);
  Out += "#" + std::to_string(Id) + "(n=" + std::to_string(Caller) +
         " t=" + std::to_string(T) + " v=" + std::to_string(V);
  if (isMethod())
    Out += " m=" + std::to_string(Method);
  if (isElection() || isCommit())
    Out += " Q=" + Supporters.str();
  if (isReconfig())
    Out += " cf=" + Conf.str();
  Out += ")";
  return Out;
}

bool adore::cacheGreater(const Cache &C1, const Cache &C2) {
  if (C1.T != C2.T)
    return C1.T > C2.T;
  if (C1.V != C2.V)
    return C1.V > C2.V;
  return C1.isCommit() && !C2.isCommit();
}

bool adore::cacheMaxOrder(const Cache &C1, const Cache &C2) {
  if (cacheGreater(C1, C2))
    return true;
  if (cacheGreater(C2, C1))
    return false;
  return C1.Id > C2.Id;
}
