//===- adore/Cache.h - Cache tree node variants ---------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four cache variants of the Adore state (Fig. 6 / Fig. 24):
/// elections (ECache), method invocations (MCache), reconfigurations
/// (RCache), and commits (CCache), together with the strict order > on
/// caches (Fig. 9).
///
/// Caches are represented as a single value-semantic struct with a kind
/// tag rather than a class hierarchy: the model checker copies whole
/// cache trees at high rates, so trivially copyable nodes matter more
/// than virtual dispatch here. Kind-tagged dispatch also keeps the struct
/// hashable and comparable by value.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_CACHE_H
#define ADORE_ADORE_CACHE_H

#include "adore/Config.h"
#include "support/Ids.h"
#include "support/NodeSet.h"

#include <cassert>
#include <string>

namespace adore {

/// Discriminator for the cache variants of Fig. 6.
enum class CacheKind : uint8_t {
  Election, ///< ECache: a (possibly failed-to-commit) election round.
  Method,   ///< MCache: an invoked, not-necessarily-committed method.
  Reconfig, ///< RCache: an invoked configuration change.
  Commit,   ///< CCache: a commit certificate for its ancestors.
};

/// Printable name of a cache kind ("E", "M", "R", "C").
const char *cacheKindName(CacheKind Kind);

/// One node of the cache tree.
struct Cache {
  /// Which variant this cache is.
  CacheKind Kind = CacheKind::Commit;

  /// Unique id; also the index into CacheTree storage. Ids reflect
  /// creation order and carry no semantic weight.
  CacheId Id = RootCacheId;

  /// Id of the parent cache; the root is its own parent.
  CacheId Parent = RootCacheId;

  /// The replica whose operation created this cache (the paper's caller).
  NodeId Caller = InvalidNodeId;

  /// Logical timestamp (ballot/term) of the creating round.
  Time T = 0;

  /// Version number within the round; 0 for ECaches, incremented by each
  /// method/reconfig invocation, copied by commits.
  Vrsn V = 0;

  /// The configuration under which the operation ran. For an RCache this
  /// is the *new* configuration it proposes (children inherit it).
  Config Conf;

  /// The replicas that approved this cache: election voters for ECaches,
  /// commit acknowledgers for CCaches, and just the caller for
  /// MCaches/RCaches.
  NodeSet Supporters;

  /// The invoked method; meaningful only for MCaches.
  MethodId Method = 0;

  bool isElection() const { return Kind == CacheKind::Election; }
  bool isMethod() const { return Kind == CacheKind::Method; }
  bool isReconfig() const { return Kind == CacheKind::Reconfig; }
  bool isCommit() const { return Kind == CacheKind::Commit; }

  /// True for the MCache/RCache variants, the only commit-able payloads.
  bool isCommittable() const { return isMethod() || isReconfig(); }

  /// Renders as e.g. "M#7(n=1 t=2 v=3)".
  std::string str() const;
};

/// The strict order > on caches (Fig. 9): lexicographic on
/// (time, version), except that a CCache dominates a non-CCache with the
/// same pair, which is what makes > total enough for mostRecent /
/// activeCache / lastCommit to be well-defined maxima.
bool cacheGreater(const Cache &C1, const Cache &C2);

/// Deterministic tie-break used when selecting maxima: cacheGreater first,
/// then larger id wins. Equal (time, version, kind-class) caches are
/// behaviourally symmetric, so the tie-break never affects safety; it
/// only pins down which witness the executable semantics returns.
bool cacheMaxOrder(const Cache &C1, const Cache &C2);

} // namespace adore

#endif // ADORE_ADORE_CACHE_H
