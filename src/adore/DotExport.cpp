//===- adore/DotExport.cpp - Graphviz rendering of cache trees --------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/DotExport.h"

#include "support/Debug.h"

using namespace adore;

namespace {

/// A cache is (implicitly) committed when a certificate sits below it —
/// the paper draws these as squares.
bool isImplicitlyCommitted(const CacheTree &Tree, CacheId Id) {
  if (Tree.cache(Id).isCommit())
    return true;
  bool Found = false;
  Tree.forEach([&](const Cache &C) {
    if (!Found && C.isCommit() && Tree.isAncestor(Id, C.Id))
      Found = true;
  });
  return Found;
}

const char *shapeOf(const Cache &C) {
  switch (C.Kind) {
  case CacheKind::Election:
    return "diamond";
  case CacheKind::Method:
  case CacheKind::Reconfig:
    return "ellipse";
  case CacheKind::Commit:
    return "doubleoctagon";
  }
  ADORE_UNREACHABLE("unknown cache kind");
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string adore::toDot(const CacheTree &Tree, const DotOptions &Opts) {
  std::string Out = "digraph adore {\n"
                    "  rankdir=TB;\n"
                    "  node [fontname=\"monospace\" fontsize=10];\n";
  if (!Opts.Title.empty())
    Out += "  label=\"" + escape(Opts.Title) + "\"; labelloc=t;\n";
  Tree.forEach([&](const Cache &C) {
    std::string Label =
        std::string(cacheKindName(C.Kind)) + std::to_string(C.Id) +
        "\\nt=" + std::to_string(C.T) + " v=" + std::to_string(C.V);
    if (C.isMethod() && C.Method != 0)
      Label += " m=" + std::to_string(C.Method);
    if (Opts.ShowSupporters && (C.isElection() || C.isCommit()))
      Label += "\\nQ=" + escape(C.Supporters.str());
    if (Opts.ShowConfigs && (C.isReconfig() || C.Id == RootCacheId))
      Label += "\\ncf=" + escape(C.Conf.str());
    std::string Style = isImplicitlyCommitted(Tree, C.Id)
                            ? "filled\" fillcolor=\"lightgray"
                            : "solid";
    Out += "  n" + std::to_string(C.Id) + " [shape=" + shapeOf(C) +
           " style=\"" + Style + "\" label=\"" + Label + "\"];\n";
  });
  Tree.forEach([&](const Cache &C) {
    if (C.Id == RootCacheId)
      return;
    Out += "  n" + std::to_string(C.Parent) + " -> n" +
           std::to_string(C.Id) + ";\n";
  });
  Out += "}\n";
  return Out;
}
