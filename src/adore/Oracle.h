//===- adore/Oracle.h - Oracle strategies ---------------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategies realizing the paper's nondeterministic O_pull / O_push
/// oracles. The Semantics layer defines which choices are *valid*; a
/// strategy decides which valid choice (if any) a particular run takes:
///
///  - RandomOracle: samples uniformly among valid choices, with a
///    configurable failure probability (the oracle's Fail outcome).
///    Deterministic from its seed; the backbone of property testing.
///  - ScriptedOracle: replays an explicit sequence of choices; used by
///    unit tests and counterexample replays (e.g. the Fig. 4 scenario).
///
/// The model checker does not use a strategy: it enumerates all valid
/// choices directly via Semantics::enumerate*.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_ORACLE_H
#define ADORE_ADORE_ORACLE_H

#include "adore/Ops.h"
#include "support/Rng.h"

#include <deque>
#include <optional>

namespace adore {

/// Picks concrete oracle outcomes for pull and push.
class OracleStrategy {
public:
  virtual ~OracleStrategy();

  /// A pull outcome for \p Nid, or nullopt for the Fail outcome.
  virtual std::optional<PullChoice>
  choosePull(const Semantics &Sem, const AdoreState &St, NodeId Nid) = 0;

  /// A push outcome for \p Nid, or nullopt for the Fail outcome.
  virtual std::optional<PushChoice>
  choosePush(const Semantics &Sem, const AdoreState &St, NodeId Nid) = 0;
};

/// Uniformly random valid choices with an explicit failure probability.
class RandomOracle final : public OracleStrategy {
public:
  /// \p FailPermille of calls fail outright (network loss); the rest
  /// sample uniformly among the valid choices (which may still be a
  /// non-quorum supporter set, modeling partial delivery).
  RandomOracle(uint64_t Seed, unsigned FailPermille = 100)
      : R(Seed), FailPermille(FailPermille) {}

  std::optional<PullChoice> choosePull(const Semantics &Sem,
                                       const AdoreState &St,
                                       NodeId Nid) override;
  std::optional<PushChoice> choosePush(const Semantics &Sem,
                                       const AdoreState &St,
                                       NodeId Nid) override;

private:
  Rng R;
  unsigned FailPermille;
};

/// Replays a fixed script of choices; asserts if the script runs dry.
class ScriptedOracle final : public OracleStrategy {
public:
  void scriptPull(PullChoice Choice) { Pulls.push_back(std::move(Choice)); }
  void scriptPush(PushChoice Choice) { Pushes.push_back(std::move(Choice)); }

  std::optional<PullChoice> choosePull(const Semantics &Sem,
                                       const AdoreState &St,
                                       NodeId Nid) override;
  std::optional<PushChoice> choosePush(const Semantics &Sem,
                                       const AdoreState &St,
                                       NodeId Nid) override;

private:
  std::deque<PullChoice> Pulls;
  std::deque<PushChoice> Pushes;
};

} // namespace adore

#endif // ADORE_ADORE_ORACLE_H
