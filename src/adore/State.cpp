//===- adore/State.cpp - The Adore abstract state --------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/State.h"

#include <algorithm>

using namespace adore;

Time TimeMap::get(NodeId Nid) const {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Nid,
      [](const std::pair<NodeId, Time> &E, NodeId N) { return E.first < N; });
  if (It == Entries.end() || It->first != Nid)
    return 0;
  return It->second;
}

void TimeMap::set(NodeId Nid, Time T) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Nid,
      [](const std::pair<NodeId, Time> &E, NodeId N) { return E.first < N; });
  if (It != Entries.end() && It->first == Nid) {
    It->second = T;
    return;
  }
  Entries.insert(It, {Nid, T});
}

Time TimeMap::maxOver(const NodeSet &Q) const {
  Time Max = 0;
  for (NodeId S : Q)
    Max = std::max(Max, get(S));
  return Max;
}

Time TimeMap::maxOverall() const {
  Time Max = 0;
  for (const auto &[Nid, T] : Entries)
    Max = std::max(Max, T);
  return Max;
}

AdoreState::AdoreState(const ReconfigScheme &Scheme, Config RootConf)
    : Tree(RootConf, Scheme.mbrs(RootConf)) {}

uint64_t AdoreState::fingerprint() const {
  Fnv1aHasher H;
  Tree.addToSink(H);
  Times.addToSink(H);
  return H.finish();
}

std::string AdoreState::encode() const {
  StateEncoder E;
  Tree.addToSink(E);
  Times.addToSink(E);
  return E.take();
}

std::string AdoreState::dump() const {
  std::string Out = Tree.dump();
  Out += "times:";
  for (const auto &[Nid, T] : Times.entries())
    Out += " " + std::to_string(Nid) + "->" + std::to_string(T);
  Out += "\n";
  return Out;
}
