//===- adore/State.cpp - The Adore abstract state --------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/State.h"

#include <algorithm>

using namespace adore;

Time TimeMap::get(NodeId Nid) const {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Nid,
      [](const std::pair<NodeId, Time> &E, NodeId N) { return E.first < N; });
  if (It == Entries.end() || It->first != Nid)
    return 0;
  return It->second;
}

void TimeMap::set(NodeId Nid, Time T) {
  auto It = std::lower_bound(
      Entries.begin(), Entries.end(), Nid,
      [](const std::pair<NodeId, Time> &E, NodeId N) { return E.first < N; });
  if (It != Entries.end() && It->first == Nid) {
    It->second = T;
    return;
  }
  Entries.insert(It, {Nid, T});
}

Time TimeMap::maxOver(const NodeSet &Q) const {
  Time Max = 0;
  for (NodeId S : Q)
    Max = std::max(Max, get(S));
  return Max;
}

Time TimeMap::maxOverall() const {
  Time Max = 0;
  for (const auto &[Nid, T] : Entries)
    Max = std::max(Max, T);
  return Max;
}

void TimeMap::addToHash(Fnv1aHasher &H) const {
  // Zero entries are semantically absent; skip them so states that only
  // differ by explicit-vs-implicit zeros fingerprint identically.
  size_t NonZero = 0;
  for (const auto &[Nid, T] : Entries)
    if (T != 0)
      ++NonZero;
  H.addU64(NonZero);
  for (const auto &[Nid, T] : Entries) {
    if (T == 0)
      continue;
    H.addU64(Nid);
    H.addU64(T);
  }
}

AdoreState::AdoreState(const ReconfigScheme &Scheme, Config RootConf)
    : Tree(RootConf, Scheme.mbrs(RootConf)) {}

uint64_t AdoreState::fingerprint() const {
  Fnv1aHasher H;
  H.addU64(Tree.canonicalFingerprint());
  Times.addToHash(H);
  return H.finish();
}

std::string AdoreState::dump() const {
  std::string Out = Tree.dump();
  Out += "times:";
  for (const auto &[Nid, T] : Times.entries())
    Out += " " + std::to_string(Nid) + "->" + std::to_string(T);
  Out += "\n";
  return Out;
}
