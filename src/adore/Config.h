//===- adore/Config.h - Parameterized configurations ----------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper treats the configuration type, the membership function, the
/// quorum predicate, and the R1+ relation as opaque parameters of the
/// whole model (Fig. 7). We mirror that with a value-semantic Config
/// record interpreted by a ReconfigScheme strategy. A single Config layout
/// (two node sets plus one integer parameter) is rich enough to encode all
/// of the paper's Section 6 instantiations:
///
///   Raft single-node:  Members = the set; Extra, Param unused
///   Raft joint:        Members = old set; Extra = new set (HasExtra)
///   Primary backup:    Members = primary + backups; Param = primary id
///   Dynamic quorum:    Members = the set; Param = quorum size q
///   Unanimous:         Members = the set; quorum = all members
///   Static (CADO):     Members = the set; R1+ = equality
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_CONFIG_H
#define ADORE_ADORE_CONFIG_H

#include "support/Hashing.h"
#include "support/NodeSet.h"

#include <memory>
#include <string>
#include <vector>

namespace adore {

/// A value-semantic configuration record. Which fields are meaningful is
/// decided by the active ReconfigScheme.
struct Config {
  /// Primary member set. For joint consensus this is the *old* set.
  NodeSet Members;

  /// Secondary member set; only meaningful when HasExtra is true (joint
  /// consensus "new" set).
  NodeSet Extra;

  /// True when Extra carries a set (a joint configuration).
  bool HasExtra = false;

  /// Scheme-specific integer: quorum size for dynamic-quorum, primary
  /// node id for primary-backup, unused otherwise.
  uint64_t Param = 0;

  Config() = default;

  /// Convenience constructor for the common "just a member set" layouts.
  explicit Config(NodeSet Members) : Members(std::move(Members)) {}

  bool operator==(const Config &RHS) const {
    return Members == RHS.Members && Extra == RHS.Extra &&
           HasExtra == RHS.HasExtra && Param == RHS.Param;
  }
  bool operator!=(const Config &RHS) const { return !(*this == RHS); }

  /// Feeds the configuration into a fingerprint hasher or canonical
  /// encoder (any Hashing.h sink).
  template <typename SinkT> void addToSink(SinkT &S) const {
    S.addNodeSet(Members);
    S.addNodeSet(Extra);
    S.addBool(HasExtra);
    S.addU64(Param);
  }

  /// Renders the configuration for diagnostics, e.g. "{1, 2, 3}" or
  /// "joint({1, 2}, {2, 3})" or "q=2 {1, 2, 3}".
  std::string str() const;
};

/// Strategy interface instantiating the paper's Config/mbrs/isQuorum/R1+
/// parameters. Implementations must satisfy the REFLEXIVE and OVERLAP
/// assumptions of Fig. 7; the test suite property-checks both for every
/// shipped scheme.
class ReconfigScheme {
public:
  virtual ~ReconfigScheme();

  /// Human-readable scheme name for reports.
  virtual const char *name() const = 0;

  /// The set of replicas that participate under \p C (the paper's mbrs).
  virtual NodeSet mbrs(const Config &C) const = 0;

  /// True iff \p S is a quorum of \p C (the paper's isQuorum). Callers
  /// guarantee S is a subset of mbrs(C) (validSupp).
  virtual bool isQuorum(const NodeSet &S, const Config &C) const = 0;

  /// The R1+ relation: may a leader configured with \p Old propose
  /// \p New? Must guarantee quorum overlap between the two (OVERLAP).
  virtual bool r1Plus(const Config &Old, const Config &New) const = 0;

  /// True iff \p C is a well-formed configuration for this scheme.
  virtual bool isValidConfig(const Config &C) const = 0;

  /// Enumerates the candidate successor configurations of \p C drawn from
  /// the node universe \p Universe, used to drive reconfig transitions in
  /// the model checker and randomized testers. Every returned config
  /// satisfies r1Plus(C, result) and isValidConfig. Schemes with a very
  /// large legal successor space (joint, unanimous) restrict themselves
  /// to single-node deltas to keep exploration tractable; this bounds the
  /// checked behaviours, not the model.
  virtual std::vector<Config> candidateReconfigs(const Config &C,
                                                 const NodeSet &Universe)
      const = 0;

  /// True if the scheme permits reconfiguration at all. The static (CADO)
  /// scheme returns false, which disables reconfig transitions and yields
  /// the configuration-aware-but-static model the paper calls CADO.
  virtual bool allowsReconfig() const { return true; }
};

/// Identifies one of the shipped scheme implementations.
enum class SchemeKind {
  RaftSingleNode,
  RaftJoint,
  PrimaryBackup,
  DynamicQuorum,
  Unanimous,
  Static,
};

/// Instantiates the scheme implementation for \p Kind.
std::unique_ptr<ReconfigScheme> makeScheme(SchemeKind Kind);

/// All shipped scheme kinds, for parameterized sweeps.
std::vector<SchemeKind> allSchemeKinds();

/// Printable name of a scheme kind.
const char *schemeKindName(SchemeKind Kind);

} // namespace adore

#endif // ADORE_ADORE_CONFIG_H
