//===- adore/CacheTree.cpp - The Adore cache tree -------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "adore/CacheTree.h"

#include <algorithm>

using namespace adore;

CacheTree::CacheTree(Config RootConf, NodeSet RootSupporters) {
  Cache Root;
  Root.Kind = CacheKind::Commit;
  Root.Id = RootCacheId;
  Root.Parent = RootCacheId;
  Root.Caller = InvalidNodeId;
  Root.T = 0;
  Root.V = 0;
  Root.Conf = std::move(RootConf);
  Root.Supporters = std::move(RootSupporters);
  Caches.push_back(std::move(Root));
  Children.emplace_back();
}

CacheId CacheTree::addLeaf(CacheId Parent, Cache C) {
  assert(Parent < Caches.size() && "addLeaf: bad parent");
  CacheId Fresh = static_cast<CacheId>(Caches.size());
  C.Id = Fresh;
  C.Parent = Parent;
  Caches.push_back(std::move(C));
  Children.emplace_back();
  Children[Parent].push_back(Fresh);
  return Fresh;
}

CacheId CacheTree::insertBtw(CacheId Parent, Cache C) {
  assert(Parent < Caches.size() && "insertBtw: bad parent");
  CacheId Fresh = static_cast<CacheId>(Caches.size());
  C.Id = Fresh;
  C.Parent = Parent;
  // Re-parent the current children of Parent onto the new cache; they
  // represent partial failures that may still be committed later.
  std::vector<CacheId> Moved = std::move(Children[Parent]);
  for (CacheId Kid : Moved)
    Caches[Kid].Parent = Fresh;
  Children[Parent].clear();
  Caches.push_back(std::move(C));
  Children.push_back(std::move(Moved));
  Children[Parent].push_back(Fresh);
  return Fresh;
}

bool CacheTree::isAncestor(CacheId Ancestor, CacheId Descendant) const {
  if (Ancestor == Descendant)
    return false;
  CacheId Cur = Descendant;
  while (Cur != RootCacheId) {
    Cur = Caches[Cur].Parent;
    if (Cur == Ancestor)
      return true;
  }
  return false;
}

bool CacheTree::isAncestorOrSelf(CacheId Ancestor,
                                 CacheId Descendant) const {
  return Ancestor == Descendant || isAncestor(Ancestor, Descendant);
}

bool CacheTree::onSameBranch(CacheId A, CacheId B) const {
  return isAncestorOrSelf(A, B) || isAncestor(B, A);
}

size_t CacheTree::depth(CacheId Id) const {
  size_t D = 0;
  while (Id != RootCacheId) {
    Id = Caches[Id].Parent;
    ++D;
  }
  return D;
}

CacheId CacheTree::lowestCommonAncestor(CacheId A, CacheId B) const {
  size_t DA = depth(A), DB = depth(B);
  while (DA > DB) {
    A = Caches[A].Parent;
    --DA;
  }
  while (DB > DA) {
    B = Caches[B].Parent;
    --DB;
  }
  while (A != B) {
    A = Caches[A].Parent;
    B = Caches[B].Parent;
  }
  return A;
}

std::vector<CacheId> CacheTree::branchOf(CacheId Id) const {
  std::vector<CacheId> Path;
  for (CacheId Cur = Id;; Cur = Caches[Cur].Parent) {
    Path.push_back(Cur);
    if (Cur == RootCacheId)
      break;
  }
  std::reverse(Path.begin(), Path.end());
  return Path;
}

size_t CacheTree::rdist(CacheId A, CacheId B) const {
  CacheId Anc = lowestCommonAncestor(A, B);
  size_t Count = 0;
  // Walk each endpoint up to the common ancestor, counting RCaches
  // strictly between the endpoint and the ancestor. The endpoints
  // themselves are excluded; the common ancestor is an interior point of
  // the path only when it differs from both endpoints.
  for (CacheId Cur : {A, B}) {
    while (Cur != Anc) {
      if (Cur != A && Cur != B && Caches[Cur].isReconfig())
        ++Count;
      Cur = Caches[Cur].Parent;
    }
  }
  if (Anc != A && Anc != B && Caches[Anc].isReconfig())
    ++Count;
  return Count;
}

size_t CacheTree::treeRdist() const {
  size_t Max = 0;
  for (CacheId A = 0; A < Caches.size(); ++A)
    for (CacheId B = A + 1; B < Caches.size(); ++B)
      Max = std::max(Max, rdist(A, B));
  return Max;
}

// Whether \p Nid holds the replicated state represented by \p C: its own
// method/reconfig invocations (caller) and the commits it acknowledged
// or issued (supporters). ECaches are transparent here — an election
// carries no replicated state, so neither a *vote* (which only promises
// a timestamp) nor the candidacy itself makes anyone "hold" the branch
// the election happens to sit on. The printed mostRecent definition
// (Fig. 9) ranges over all caches and supporters; restricting it to
// state-bearing caches is the only reading consistent with (a) the
// Fig. 12 counterexample (a vote must not carry the candidate's branch
// into later elections), and (b) the refinement relation: Raft's
// up-to-date vote rule compares LOGS, so the greatest state-bearing
// cache held by any voter provably lies on the winning candidate's own
// log branch, whereas a newer ECache with an empty branch would
// teleport a re-elected leader away from its log. Every Appendix B
// proof step that bounds mostRecent from below does so through shared
// CCache supporters, which this reading preserves; the full lemma suite
// is re-verified executably under it (tests/McTest.cpp).
static bool holdsState(const Cache &C, NodeId Nid) {
  return !C.isElection() && C.Supporters.contains(Nid);
}

static bool holdsStateAny(const Cache &C, const NodeSet &Q) {
  return !C.isElection() && Q.intersects(C.Supporters);
}

CacheId CacheTree::mostRecent(const NodeSet &Q) const {
  CacheId Best = InvalidCacheId;
  for (const Cache &C : Caches) {
    if (!holdsStateAny(C, Q))
      continue;
    if (Best == InvalidCacheId || cacheMaxOrder(C, Caches[Best]))
      Best = C.Id;
  }
  return Best;
}

CacheId CacheTree::activeCache(NodeId Nid) const {
  CacheId Best = InvalidCacheId;
  for (const Cache &C : Caches) {
    if (C.Caller != Nid)
      continue;
    if (Best == InvalidCacheId || cacheMaxOrder(C, Caches[Best]))
      Best = C.Id;
  }
  return Best;
}

CacheId CacheTree::lastCommit(NodeId Nid) const {
  CacheId Best = InvalidCacheId;
  for (const Cache &C : Caches) {
    if (!C.isCommit() || !C.Supporters.contains(Nid))
      continue;
    if (Best == InvalidCacheId || cacheMaxOrder(C, Caches[Best]))
      Best = C.Id;
  }
  return Best;
}

CacheId CacheTree::observedCache(NodeId Nid) const {
  CacheId Best = InvalidCacheId;
  for (const Cache &C : Caches) {
    if (!holdsState(C, Nid))
      continue;
    if (Best == InvalidCacheId || cacheMaxOrder(C, Caches[Best]))
      Best = C.Id;
  }
  return Best;
}

CacheId CacheTree::maxCommit() const {
  CacheId Best = RootCacheId;
  for (const Cache &C : Caches)
    if (C.isCommit() && cacheMaxOrder(C, Caches[Best]))
      Best = C.Id;
  return Best;
}

std::vector<CacheId> CacheTree::committedLog() const {
  std::vector<CacheId> Log;
  for (CacheId Id : branchOf(maxCommit()))
    if (Caches[Id].isCommittable())
      Log.push_back(Id);
  return Log;
}

NodeSet CacheTree::universe(const ReconfigScheme &Scheme) const {
  NodeSet U;
  for (const Cache &C : Caches)
    U = U.unionWith(Scheme.mbrs(C.Conf));
  return U;
}

CacheId CacheTree::pruneToBranch(CacheId Tip) {
  assert(Tip < Caches.size() && "pruneToBranch: bad tip");
  // Survivors: the root-to-Tip spine plus Tip's whole subtree.
  std::vector<bool> Keep(Caches.size(), false);
  for (CacheId Id : branchOf(Tip))
    Keep[Id] = true;
  // Mark descendants breadth-first.
  std::vector<CacheId> Work{Tip};
  while (!Work.empty()) {
    CacheId Cur = Work.back();
    Work.pop_back();
    for (CacheId Kid : Children[Cur]) {
      Keep[Kid] = true;
      Work.push_back(Kid);
    }
  }
  // Rebuild with contiguous fresh ids in breadth-first order so every
  // parent is remapped before its children. (Creation-id order would
  // not do: insertBtw re-parents earlier-created caches under a
  // later-created commit.)
  std::vector<CacheId> Remap(Caches.size(), InvalidCacheId);
  std::vector<Cache> NewCaches;
  std::vector<std::vector<CacheId>> NewChildren;
  std::vector<CacheId> Order{RootCacheId};
  for (size_t Head = 0; Head != Order.size(); ++Head) {
    CacheId Id = Order[Head];
    CacheId Fresh = static_cast<CacheId>(NewCaches.size());
    Remap[Id] = Fresh;
    Cache C = std::move(Caches[Id]);
    C.Id = Fresh;
    C.Parent = Id == RootCacheId ? Fresh : Remap[C.Parent];
    NewCaches.push_back(std::move(C));
    NewChildren.emplace_back();
    if (Id != RootCacheId)
      NewChildren[NewCaches.back().Parent].push_back(Fresh);
    for (CacheId Kid : Children[Id])
      if (Keep[Kid])
        Order.push_back(Kid);
  }
  Caches = std::move(NewCaches);
  Children = std::move(NewChildren);
  return Remap[Tip];
}

uint64_t CacheTree::canonicalFingerprint() const {
  Fnv1aHasher H;
  addToSink(H);
  return H.finish();
}

std::string CacheTree::canonicalEncoding() const {
  StateEncoder E;
  addToSink(E);
  return E.take();
}

void CacheTree::dumpSubtree(CacheId Id, const std::string &Prefix,
                            bool Last, std::string &Out) const {
  Out += Prefix;
  if (Id != RootCacheId)
    Out += Last ? "`-" : "|-";
  Out += Caches[Id].str();
  Out += "\n";
  std::string KidPrefix = Prefix;
  if (Id != RootCacheId)
    KidPrefix += Last ? "  " : "| ";
  const std::vector<CacheId> &Kids = Children[Id];
  for (size_t I = 0; I != Kids.size(); ++I)
    dumpSubtree(Kids[I], KidPrefix, I + 1 == Kids.size(), Out);
}

std::string CacheTree::dump() const {
  std::string Out;
  dumpSubtree(RootCacheId, "", true, Out);
  return Out;
}
