//===- adore/DotExport.h - Graphviz rendering of cache trees --*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders cache trees as Graphviz DOT, in the visual language of the
/// paper's figures: elections as diamonds, methods/reconfigs as circles
/// (speculative state), commit certificates as (double) boxes, with
/// timestamps, versions, supporter sets, and configurations in the
/// labels. Committed caches (those with a certificate below them) are
/// shaded like the paper's squares. Used for debugging counterexamples
/// and by the scheme_explorer example.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_ADORE_DOTEXPORT_H
#define ADORE_ADORE_DOTEXPORT_H

#include "adore/CacheTree.h"

#include <string>

namespace adore {

/// Rendering options.
struct DotOptions {
  /// Graph title (rendered as a label).
  std::string Title;
  /// Include configurations in node labels.
  bool ShowConfigs = true;
  /// Include supporter sets in node labels.
  bool ShowSupporters = true;
};

/// Renders \p Tree as a DOT digraph.
std::string toDot(const CacheTree &Tree, const DotOptions &Opts = {});

} // namespace adore

#endif // ADORE_ADORE_DOTEXPORT_H
