//===- adore/Schemes.cpp - Section 6 reconfiguration schemes -------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementations of the paper's reconfiguration scheme instantiations
/// (Section 6): Raft single-node, Raft joint consensus, primary backup,
/// dynamic quorum sizes, plus two extra schemes (unanimous and static)
/// matching the artifact's "six examples". Each instantiation must satisfy
/// the REFLEXIVE and OVERLAP assumptions of Fig. 7; the rationale is given
/// scheme by scheme below and property-checked in the test suite.
///
//===----------------------------------------------------------------------===//

#include "adore/Config.h"

#include "support/Debug.h"

#include <cassert>

using namespace adore;

ReconfigScheme::~ReconfigScheme() = default;

std::string Config::str() const {
  std::string Out;
  if (HasExtra) {
    Out = "joint(" + Members.str() + ", " + Extra.str() + ")";
    return Out;
  }
  if (Param != 0)
    Out = "p=" + std::to_string(Param) + " ";
  Out += Members.str();
  return Out;
}

namespace {

/// Majority test: |C| < 2 * |S intersect C|.
bool isMajorityOf(const NodeSet &S, const NodeSet &C) {
  return C.size() < 2 * S.intersectWith(C).size();
}

/// Single-node additions and removals of \p Base within \p Universe.
/// Removals never empty the set.
std::vector<NodeSet> singleNodeDeltas(const NodeSet &Base,
                                      const NodeSet &Universe) {
  std::vector<NodeSet> Out;
  for (NodeId N : Universe.differenceWith(Base)) {
    NodeSet Grown = Base;
    Grown.insert(N);
    Out.push_back(Grown);
  }
  if (Base.size() > 1) {
    for (NodeId N : Base) {
      NodeSet Shrunk = Base;
      Shrunk.erase(N);
      Out.push_back(Shrunk);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Raft single-node
//===----------------------------------------------------------------------===//

/// Raft's single-server membership change: majority quorums and
/// configurations may differ by at most one server. OVERLAP holds because
/// a majority of C and a majority of C' = C u {s} together exceed |C'|,
/// so they share a member (pigeonhole).
class RaftSingleNodeScheme final : public ReconfigScheme {
public:
  const char *name() const override { return "raft-single-node"; }

  NodeSet mbrs(const Config &C) const override { return C.Members; }

  bool isQuorum(const NodeSet &S, const Config &C) const override {
    return isMajorityOf(S, C.Members);
  }

  bool r1Plus(const Config &Old, const Config &New) const override {
    if (!isValidConfig(Old) || !isValidConfig(New))
      return false;
    if (Old.Members == New.Members)
      return true;
    const NodeSet &A = Old.Members, &B = New.Members;
    if (A.size() + 1 == B.size() && A.isSubsetOf(B))
      return true;
    if (B.size() + 1 == A.size() && B.isSubsetOf(A))
      return true;
    return false;
  }

  bool isValidConfig(const Config &C) const override {
    return !C.Members.empty() && !C.HasExtra && C.Param == 0;
  }

  std::vector<Config>
  candidateReconfigs(const Config &C, const NodeSet &Universe) const override {
    std::vector<Config> Out;
    for (NodeSet &S : singleNodeDeltas(C.Members, Universe))
      Out.push_back(Config(std::move(S)));
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Raft joint consensus
//===----------------------------------------------------------------------===//

/// Raft's joint-consensus change: a transition from (old, _|_) enters the
/// joint configuration (old, new), where quorums require majorities of
/// *both* sets; from (old, new) the only move is to (new, _|_). OVERLAP:
/// a quorum of (old, _|_) and of (old, new) each contain a majority of
/// old; a quorum of (old, new) and of (new, _|_) each contain a majority
/// of new.
///
/// Note: the paper's R1+ as printed is not reflexive on joint
/// configurations; we add the identity disjunct explicitly (harmless, as
/// quorums of identical configurations intersect).
class RaftJointScheme final : public ReconfigScheme {
public:
  const char *name() const override { return "raft-joint"; }

  NodeSet mbrs(const Config &C) const override {
    return C.HasExtra ? C.Members.unionWith(C.Extra) : C.Members;
  }

  bool isQuorum(const NodeSet &S, const Config &C) const override {
    if (!isMajorityOf(S, C.Members))
      return false;
    return !C.HasExtra || isMajorityOf(S, C.Extra);
  }

  bool r1Plus(const Config &Old, const Config &New) const override {
    if (!isValidConfig(Old) || !isValidConfig(New))
      return false;
    if (Old == New)
      return true;
    // (old, _|_) -> (old, anything)
    if (!Old.HasExtra && New.Members == Old.Members && New.HasExtra)
      return true;
    // (_, new) -> (new, _|_)
    if (Old.HasExtra && !New.HasExtra && New.Members == Old.Extra)
      return true;
    return false;
  }

  bool isValidConfig(const Config &C) const override {
    if (C.Members.empty() || C.Param != 0)
      return false;
    return !C.HasExtra || !C.Extra.empty();
  }

  std::vector<Config>
  candidateReconfigs(const Config &C, const NodeSet &Universe) const override {
    std::vector<Config> Out;
    if (C.HasExtra) {
      // Leave the joint configuration.
      Out.push_back(Config(C.Extra));
      return Out;
    }
    // Enter a joint configuration. Arbitrary target sets are legal; we
    // explore single-node deltas to keep the model-checking fan-out
    // bounded (see candidateReconfigs doc comment).
    for (NodeSet &S : singleNodeDeltas(C.Members, Universe)) {
      Config Joint(C.Members);
      Joint.Extra = std::move(S);
      Joint.HasExtra = true;
      Out.push_back(std::move(Joint));
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Primary backup
//===----------------------------------------------------------------------===//

/// Chain-replication flavored primary backup: a quorum is any supporter
/// set containing the fixed primary, so backups may churn arbitrarily.
/// OVERLAP: R1+ requires equal primaries, and every quorum contains the
/// primary, so any two quorums share it.
class PrimaryBackupScheme final : public ReconfigScheme {
public:
  const char *name() const override { return "primary-backup"; }

  NodeSet mbrs(const Config &C) const override { return C.Members; }

  bool isQuorum(const NodeSet &S, const Config &C) const override {
    return S.contains(static_cast<NodeId>(C.Param));
  }

  bool r1Plus(const Config &Old, const Config &New) const override {
    if (!isValidConfig(Old) || !isValidConfig(New))
      return false;
    return Old.Param == New.Param;
  }

  bool isValidConfig(const Config &C) const override {
    return !C.Members.empty() && !C.HasExtra &&
           C.Members.contains(static_cast<NodeId>(C.Param));
  }

  std::vector<Config>
  candidateReconfigs(const Config &C, const NodeSet &Universe) const override {
    std::vector<Config> Out;
    NodeId Primary = static_cast<NodeId>(C.Param);
    for (NodeSet &S : singleNodeDeltas(C.Members, Universe)) {
      if (!S.contains(Primary))
        continue; // The primary itself may never be removed.
      Config Next(std::move(S));
      Next.Param = C.Param;
      Out.push_back(std::move(Next));
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Dynamic quorum sizes
//===----------------------------------------------------------------------===//

/// Vertical-Paxos flavored dynamic quorums: the configuration carries its
/// own quorum size q. OVERLAP: whenever one member set contains the other
/// and |larger| < q + q', two quorums place q + q' > |larger| elements
/// into the larger set, so by pigeonhole they share one.
///
/// Well-formedness additionally demands 2q > |C| so that REFLEXIVE (two
/// quorums of the *same* configuration overlap) holds.
class DynamicQuorumScheme final : public ReconfigScheme {
public:
  const char *name() const override { return "dynamic-quorum"; }

  NodeSet mbrs(const Config &C) const override { return C.Members; }

  bool isQuorum(const NodeSet &S, const Config &C) const override {
    return S.intersectWith(C.Members).size() >= C.Param;
  }

  bool r1Plus(const Config &Old, const Config &New) const override {
    if (!isValidConfig(Old) || !isValidConfig(New))
      return false;
    uint64_t QSum = Old.Param + New.Param;
    if (Old.Members.isSubsetOf(New.Members) && New.Members.size() < QSum)
      return true;
    if (New.Members.isSubsetOf(Old.Members) && Old.Members.size() < QSum)
      return true;
    return false;
  }

  bool isValidConfig(const Config &C) const override {
    if (C.Members.empty() || C.HasExtra)
      return false;
    return C.Param >= 1 && C.Param <= C.Members.size() &&
           2 * C.Param > C.Members.size();
  }

  std::vector<Config>
  candidateReconfigs(const Config &C, const NodeSet &Universe) const override {
    std::vector<Config> Out;
    for (NodeSet &S : singleNodeDeltas(C.Members, Universe)) {
      for (uint64_t Q = 1; Q <= S.size(); ++Q) {
        Config Next(S);
        Next.Param = Q;
        if (isValidConfig(Next) && r1Plus(C, Next))
          Out.push_back(std::move(Next));
      }
    }
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Unanimous
//===----------------------------------------------------------------------===//

/// The q = n corner of the dynamic-quorum trade-off, kept as its own
/// scheme: a quorum must contain every member, which lets n-1 replicas
/// change at once. OVERLAP: quorums are (supersets of) the full member
/// sets, so two quorums overlap iff the member sets intersect, which is
/// exactly what R1+ requires.
class UnanimousScheme final : public ReconfigScheme {
public:
  const char *name() const override { return "unanimous"; }

  NodeSet mbrs(const Config &C) const override { return C.Members; }

  bool isQuorum(const NodeSet &S, const Config &C) const override {
    return C.Members.isSubsetOf(S);
  }

  bool r1Plus(const Config &Old, const Config &New) const override {
    if (!isValidConfig(Old) || !isValidConfig(New))
      return false;
    return Old.Members.intersects(New.Members);
  }

  bool isValidConfig(const Config &C) const override {
    return !C.Members.empty() && !C.HasExtra && C.Param == 0;
  }

  std::vector<Config>
  candidateReconfigs(const Config &C, const NodeSet &Universe) const override {
    std::vector<Config> Out;
    for (NodeSet &S : singleNodeDeltas(C.Members, Universe))
      if (S.intersects(C.Members))
        Out.push_back(Config(std::move(S)));
    return Out;
  }
};

//===----------------------------------------------------------------------===//
// Static (CADO)
//===----------------------------------------------------------------------===//

/// Degenerate scheme with majority quorums and no legal reconfiguration:
/// removing the boxed-blue parts of the paper's semantics yields CADO,
/// and running Adore with this scheme is exactly that model.
class StaticScheme final : public ReconfigScheme {
public:
  const char *name() const override { return "static"; }

  NodeSet mbrs(const Config &C) const override { return C.Members; }

  bool isQuorum(const NodeSet &S, const Config &C) const override {
    return isMajorityOf(S, C.Members);
  }

  bool r1Plus(const Config &Old, const Config &New) const override {
    return isValidConfig(Old) && Old == New;
  }

  bool isValidConfig(const Config &C) const override {
    return !C.Members.empty() && !C.HasExtra && C.Param == 0;
  }

  std::vector<Config>
  candidateReconfigs(const Config &C, const NodeSet &Universe) const override {
    return {};
  }

  bool allowsReconfig() const override { return false; }
};

} // namespace

std::unique_ptr<ReconfigScheme> adore::makeScheme(SchemeKind Kind) {
  switch (Kind) {
  case SchemeKind::RaftSingleNode:
    return std::make_unique<RaftSingleNodeScheme>();
  case SchemeKind::RaftJoint:
    return std::make_unique<RaftJointScheme>();
  case SchemeKind::PrimaryBackup:
    return std::make_unique<PrimaryBackupScheme>();
  case SchemeKind::DynamicQuorum:
    return std::make_unique<DynamicQuorumScheme>();
  case SchemeKind::Unanimous:
    return std::make_unique<UnanimousScheme>();
  case SchemeKind::Static:
    return std::make_unique<StaticScheme>();
  }
  ADORE_UNREACHABLE("unknown scheme kind");
}

std::vector<SchemeKind> adore::allSchemeKinds() {
  return {SchemeKind::RaftSingleNode, SchemeKind::RaftJoint,
          SchemeKind::PrimaryBackup, SchemeKind::DynamicQuorum,
          SchemeKind::Unanimous,     SchemeKind::Static};
}

const char *adore::schemeKindName(SchemeKind Kind) {
  switch (Kind) {
  case SchemeKind::RaftSingleNode:
    return "raft-single-node";
  case SchemeKind::RaftJoint:
    return "raft-joint";
  case SchemeKind::PrimaryBackup:
    return "primary-backup";
  case SchemeKind::DynamicQuorum:
    return "dynamic-quorum";
  case SchemeKind::Unanimous:
    return "unanimous";
  case SchemeKind::Static:
    return "static";
  }
  ADORE_UNREACHABLE("unknown scheme kind");
}
