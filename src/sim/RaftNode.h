//===- sim/RaftNode.h - Simulator host for the Raft core ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The discrete-event-simulator host for core::RaftCore: a thin adapter
/// that feeds the sans-I/O protocol core its inputs (messages, timer
/// firings, client commands) and maps the returned effect list onto the
/// sim::EventQueue — Send becomes the cluster's latency/loss network
/// callback, SetTimer becomes a scheduled callback that re-enters the
/// core with the carried generation, Apply becomes the OnApply hook.
/// No protocol logic lives here; role transitions, quorum checks, log
/// truncation, and reconfiguration guards are all core::RaftCore's.
///
/// Effects are executed strictly in emission order, which reproduces the
/// pre-extraction event schedule exactly: chaos scenario seeds yield
/// byte-identical histories through this adapter.
///
/// This is the analog of the paper's extracted-OCaml Raft (Section 7):
/// where they extracted Coq to OCaml and ran on EC2, we run the one
/// executable core over a simulated network with calibrated latencies,
/// which reproduces the *shape* of Fig. 16 (latency blips at
/// reconfiguration points within the normal spike range).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_SIM_RAFTNODE_H
#define ADORE_SIM_RAFTNODE_H

#include "core/RaftCore.h"
#include "sim/EventQueue.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace adore {

namespace store {
class NodeStore;
} // namespace store

namespace sim {

/// Replica roles (the core's, re-exported for existing call sites).
using Role = core::Role;
using core::roleName;

/// One slot of the executable node's log.
using SimLogEntry = core::LogEntry;

/// Wire messages of the executable protocol.
using SimMsg = core::Msg;

/// Timing knobs (virtual microseconds).
struct NodeOptions {
  SimTime ElectionTimeoutMinUs = 150000;
  SimTime ElectionTimeoutMaxUs = 300000;
  SimTime HeartbeatUs = 50000;
  size_t MaxEntriesPerAppend = 64;
  /// Forwarded to core::CoreOptions::DisableVoteStickiness — injectable
  /// §4.2.3 misbehavior, for regression tests only.
  bool DisableVoteStickiness = false;
  /// Self-healing knobs, forwarded to the core (see core::CoreOptions).
  /// Both default off so pre-healing seeds keep byte-identical schedules.
  bool EnableSuspicion = false;
  uint32_t SuspicionSuspectScore = 8;
  uint32_t SuspicionRecoverScore = 2;
  bool EnableSnapshotCatchup = false;
  size_t SnapshotLagEntries = 64;
  size_t SnapshotChunkBytes = 4096;
  /// Linearizable-read tiers, forwarded to the core (see
  /// core::CoreOptions). All default off: legacy seeds draw the same
  /// schedules byte-for-byte.
  bool EnableReadIndex = false;
  bool EnableLease = false;
  uint64_t LeaseDurationUs = 0;
  uint64_t MaxDriftPpm = 0;
  bool EnableFollowerReads = false;
  bool TestIgnoreLeaseExpiry = false;
};

/// A single simulated replica: core::RaftCore + effect plumbing.
class RaftNode {
public:
  /// \p Send transmits a message (the host applies latency/loss).
  /// \p OnApply fires for every entry this node applies (commits), in
  /// log order. \p Store, when non-null, makes persistence real: durable
  /// state flows through the WAL before any effect of a Persist-carrying
  /// batch executes, crash() powers the store's disk down, and restart()
  /// recovers from what survived instead of trusting memory.
  RaftNode(NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
           NodeOptions Opts, EventQueue &Queue, uint64_t Seed,
           std::function<void(SimMsg)> Send,
           std::function<void(NodeId, size_t, const SimLogEntry &)>
               OnApply,
           store::NodeStore *Store = nullptr);

  /// Arms the first election timeout; call once at cluster start.
  void start() { dispatch(Core.start()); }

  /// Delivers a message to this node.
  void receive(const SimMsg &M) {
    dispatch(Core.onMessage(M, nowUs()));
  }

  /// Fail-stop: the node ignores messages and timers until restarted.
  /// Store-backed nodes lose whatever the fault model says a power cut
  /// costs (the un-fsynced suffix, torn or garbage-tailed).
  void crash();

  /// Restart after a crash. In-memory mode, persistent state (term,
  /// vote, log) survives by fiat; store-backed nodes recover it from
  /// disk and cross-check the result against the idealized copy.
  void restart();

  /// Where store-backed recovery mismatches are reported (the cluster
  /// points this at its violation list).
  void setStoreViolationSink(std::vector<std::string> *Sink) {
    StoreViolations = Sink;
  }

  //===--------------------------------------------------------------===//
  // Leader-side API (cluster/client facing)
  //===--------------------------------------------------------------===//

  /// Appends a client command; returns false if not leader. Replication
  /// starts immediately.
  bool submit(MethodId Method, uint64_t ClientSeq);

  /// Appends a reconfiguration if the R1+/R2/R3 guards pass and this
  /// leader stays a member; returns false otherwise.
  bool requestReconfig(const Config &NewConf);

  /// Leadership transfer (Raft 3.10): tells \p Target — which must be a
  /// member and caught up — to elect immediately, and steps this leader
  /// out of the way. Returns false if not leader or the target lags.
  bool transferLeadership(NodeId Target);

  /// Starts a linearizable read (core::RaftCore::readQuery). The read
  /// observer fires with the outcome — possibly synchronously, before
  /// this returns. Returns false if the core failed it synchronously.
  bool read(uint64_t ReadId);

  /// Observer for read outcomes: (node, ReadId, ok, safe index). On
  /// ok the node's applied state machine has reached the safe index,
  /// so serving the read from this replica is linearizable.
  void setReadObserver(
      std::function<void(NodeId, uint64_t, bool, size_t)> Fn) {
    OnRead = std::move(Fn);
  }

  /// Skews this node's protocol clock: every NowUs the core observes
  /// (message receipt, timer firing, read submission) is offset by
  /// \p SkewUs from virtual time. Timers still *fire* on queue time —
  /// drift misleads lease/stickiness arithmetic, it does not reorder
  /// the event loop. The clock-drift nemesis drives this.
  void setClockSkew(int64_t SkewUs) { ClockSkewUs = SkewUs; }
  int64_t clockSkew() const { return ClockSkewUs; }

  /// Observer fired whenever this node wins an election, with the term it
  /// now leads. The chaos harness uses it to check election safety (at
  /// most one leader per term) at runtime.
  void setLeaderObserver(std::function<void(NodeId, Time)> Fn) {
    OnLeader = std::move(Fn);
  }

  /// Observer for leader-observed liveness transitions: fired with this
  /// node's id, the peer, and true (suspected) / false (recovered).
  /// Requires NodeOptions::EnableSuspicion; the heal driver subscribes.
  void setSuspicionObserver(std::function<void(NodeId, NodeId, bool)> Fn) {
    OnSuspicion = std::move(Fn);
  }

  //===--------------------------------------------------------------===//
  // Introspection (forwarded to the core)
  //===--------------------------------------------------------------===//

  NodeId id() const { return Core.id(); }
  Role role() const { return Core.role(); }
  bool isLeader() const { return Core.isLeader(); }
  Time term() const { return Core.term(); }
  size_t commitIndex() const { return Core.commitIndex(); }
  size_t logSize() const { return Core.logSize(); }
  const SimLogEntry &entry(size_t Index1) const {
    return Core.entry(Index1);
  }
  /// The configuration currently in force (hot semantics).
  Config config() const { return Core.config(); }
  /// The leader this node last heard from (its redirect hint).
  std::optional<NodeId> leaderHint() const { return Core.leaderHint(); }
  /// True once the node has observed its own committed removal and
  /// gone passive.
  bool isPassive() const { return Core.isPassive(); }
  /// True while crashed (ignores everything).
  bool isCrashed() const { return Core.isCrashed(); }

  std::string describe() const { return Core.describe(); }

  /// The hosted protocol core (read-only), for tests that inspect core
  /// state directly.
  const core::RaftCore &core() const { return Core; }

private:
  /// Executes the core's effects in emission order against the event
  /// queue and host callbacks. When a batch carries a Persist effect,
  /// the store is flushed up front (persist-before-act): the core emits
  /// Persist at the end of the step, but nothing — especially no Send —
  /// may escape before the durable state backing it is on disk.
  void dispatch(core::Effects Effs);

  /// The node's (possibly skewed) protocol clock, clamped at zero.
  uint64_t nowUs() const {
    int64_t Now = static_cast<int64_t>(Queue->now()) + ClockSkewUs;
    return Now < 0 ? 0 : static_cast<uint64_t>(Now);
  }

  /// Runs store recovery and installs the result into the (crashed or
  /// fresh) core. \p CheckAgainstCore enables the restart-time
  /// cross-check against the idealized in-memory state.
  void recoverFromStore(bool CheckAgainstCore);

  EventQueue *Queue;
  core::RaftCore Core;
  std::function<void(SimMsg)> SendFn;
  std::function<void(NodeId, size_t, const SimLogEntry &)> ApplyFn;
  std::function<void(NodeId, Time)> OnLeader;
  std::function<void(NodeId, NodeId, bool)> OnSuspicion;
  std::function<void(NodeId, uint64_t, bool, size_t)> OnRead;
  store::NodeStore *Store = nullptr;
  std::vector<std::string> *StoreViolations = nullptr;
  int64_t ClockSkewUs = 0;
};

} // namespace sim
} // namespace adore

#endif // ADORE_SIM_RAFTNODE_H
