//===- sim/RaftNode.h - Executable Raft replica ---------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deployable-style Raft replica driven by the discrete-event
/// simulator: randomized election timeouts, heartbeats, incremental
/// AppendEntries with per-follower nextIndex/matchIndex, conflict
/// truncation, commit-index advancement, and hot single-server
/// reconfiguration guarded by R1+/R2/R3. This is the analog of the
/// paper's extracted-OCaml Raft (Section 7): where they extracted Coq to
/// OCaml and ran on EC2, we run a faithful C++ implementation over a
/// simulated network with calibrated latencies, which reproduces the
/// *shape* of Fig. 16 (latency blips at reconfiguration points within
/// the normal spike range).
///
/// The node is configuration-parameterized by the same ReconfigScheme as
/// every other layer; quorum checks for votes and commits go through
/// scheme->isQuorum against the configuration in force at the relevant
/// log prefix (hot semantics: a reconfig entry acts upon insertion).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_SIM_RAFTNODE_H
#define ADORE_SIM_RAFTNODE_H

#include "adore/Config.h"
#include "raft/Message.h"
#include "sim/EventQueue.h"
#include "support/Rng.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace sim {

/// Replica roles.
enum class Role : uint8_t { Follower, Candidate, Leader };

const char *roleName(Role R);

/// One slot of the executable node's log.
struct SimLogEntry {
  Time Term = 0;
  raft::EntryKind Kind = raft::EntryKind::Method;
  MethodId Method = 0;
  Config Conf;
  /// Nonzero for client-submitted commands; used to route completions.
  uint64_t ClientSeq = 0;
};

/// Wire messages of the executable protocol.
struct SimMsg {
  enum class Kind : uint8_t {
    RequestVote,
    VoteReply,
    AppendEntries,
    AppendReply,
    TimeoutNow, ///< Leadership transfer: start an election immediately.
  };

  Kind K = Kind::RequestVote;
  NodeId From = InvalidNodeId;
  NodeId To = InvalidNodeId;
  Time Term = 0;

  // RequestVote.
  Time LastLogTerm = 0;
  size_t LastLogIndex = 0;
  /// True when the election was triggered by a leadership transfer;
  /// exempts the request from the disruptive-server vote stickiness.
  bool TransferElection = false;

  // VoteReply.
  bool Granted = false;

  // AppendEntries.
  size_t PrevIndex = 0;
  Time PrevTerm = 0;
  std::vector<SimLogEntry> Entries;
  size_t LeaderCommit = 0;

  // AppendReply.
  bool Success = false;
  size_t MatchIndex = 0;
};

/// Timing knobs (virtual microseconds).
struct NodeOptions {
  SimTime ElectionTimeoutMinUs = 150000;
  SimTime ElectionTimeoutMaxUs = 300000;
  SimTime HeartbeatUs = 50000;
  size_t MaxEntriesPerAppend = 64;
};

/// A single executable replica.
class RaftNode {
public:
  /// \p Send transmits a message (the host applies latency/loss).
  /// \p OnApply fires for every entry this node applies (commits), in
  /// log order.
  RaftNode(NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
           NodeOptions Opts, EventQueue &Queue, uint64_t Seed,
           std::function<void(SimMsg)> Send,
           std::function<void(NodeId, size_t, const SimLogEntry &)>
               OnApply);

  /// Arms the first election timeout; call once at cluster start.
  void start();

  /// Delivers a message to this node.
  void receive(const SimMsg &M);

  /// Fail-stop: the node ignores messages and timers until restarted.
  void crash();

  /// Restart after a crash: persistent state (term, vote, log) survives;
  /// volatile state (role, vote tallies, leader bookkeeping) resets.
  void restart();

  //===--------------------------------------------------------------===//
  // Leader-side API (cluster/client facing)
  //===--------------------------------------------------------------===//

  /// Appends a client command; returns false if not leader. Replication
  /// starts immediately.
  bool submit(MethodId Method, uint64_t ClientSeq);

  /// Appends a reconfiguration if the R1+/R2/R3 guards pass and this
  /// leader stays a member; returns false otherwise.
  bool requestReconfig(const Config &NewConf);

  /// Leadership transfer (Raft 3.10): tells \p Target — which must be a
  /// member and caught up — to elect immediately, and steps this leader
  /// out of the way. Returns false if not leader or the target lags.
  bool transferLeadership(NodeId Target);

  /// Observer fired whenever this node wins an election, with the term it
  /// now leads. The chaos harness uses it to check election safety (at
  /// most one leader per term) at runtime.
  void setLeaderObserver(std::function<void(NodeId, Time)> Fn) {
    OnLeader = std::move(Fn);
  }

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  NodeId id() const { return Id; }
  Role role() const { return MyRole; }
  bool isLeader() const { return MyRole == Role::Leader; }
  Time term() const { return Term; }
  size_t commitIndex() const { return CommitIndex; }
  size_t logSize() const { return Log.size(); }
  const SimLogEntry &entry(size_t Index1) const {
    assert(Index1 >= 1 && Index1 <= Log.size() && "bad log index");
    return Log[Index1 - 1];
  }
  /// The configuration currently in force (hot semantics).
  Config config() const;
  /// The leader this node last heard from (its redirect hint).
  std::optional<NodeId> leaderHint() const { return LeaderHint; }
  /// True once the node has observed its own committed removal and
  /// gone passive.
  bool isPassive() const { return Passive; }
  /// True while crashed (ignores everything).
  bool isCrashed() const { return Crashed; }

  std::string describe() const;

private:
  // Role transitions.
  void stepDown(Time NewTerm);
  void startElection(bool Transfer = false);
  void becomeLeader();

  // Timers (generation counters invalidate stale callbacks).
  void armElectionTimer();
  void armHeartbeatTimer();

  // Handlers.
  void onTimeoutNow(const SimMsg &M);
  void onRequestVote(const SimMsg &M);
  void onVoteReply(const SimMsg &M);
  void onAppendEntries(const SimMsg &M);
  void onAppendReply(const SimMsg &M);

  // Leader machinery.
  void replicateTo(NodeId Peer);
  void broadcastAppends();
  void advanceCommit();
  void appendOwn(SimLogEntry Entry);

  // Log helpers (1-based).
  Time lastLogTerm() const { return Log.empty() ? 0 : Log.back().Term; }
  size_t lastLogIndex() const { return Log.size(); }
  Config configOfPrefix(size_t Len) const;
  bool logSatisfiesR2() const;
  bool logSatisfiesR3() const;
  void applyUpTo(size_t Index);
  void updatePassivity();

  NodeId Id;
  const ReconfigScheme *Scheme;
  Config InitialConf;
  NodeOptions Opts;
  EventQueue *Queue;
  Rng R;
  std::function<void(SimMsg)> Send;
  std::function<void(NodeId, size_t, const SimLogEntry &)> OnApply;
  std::function<void(NodeId, Time)> OnLeader;

  Role MyRole = Role::Follower;
  Time Term = 0;
  std::optional<NodeId> VotedFor;
  std::vector<SimLogEntry> Log;
  size_t CommitIndex = 0;
  size_t Applied = 0;
  NodeSet Votes;
  std::map<NodeId, size_t> NextIndex;
  std::map<NodeId, size_t> MatchIndex;
  std::optional<NodeId> LeaderHint;
  /// When this node last accepted an AppendEntries from a live leader.
  /// Votes are refused within ElectionTimeoutMinUs of leader contact
  /// (Raft §4.2.3): a server campaigning on stale state — typically one
  /// removed from the configuration while partitioned, which can never
  /// learn of its removal — would otherwise depose healthy leaders
  /// forever. Volatile: reset on restart.
  SimTime LastLeaderContactUs = 0;
  bool Passive = false;
  bool Crashed = false;

  uint64_t ElectionGen = 0;
  uint64_t HeartbeatGen = 0;
};

} // namespace sim
} // namespace adore

#endif // ADORE_SIM_RAFTNODE_H
