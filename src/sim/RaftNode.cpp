//===- sim/RaftNode.cpp - Simulator host for the Raft core ------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/RaftNode.h"

#include "support/Debug.h"

using namespace adore;
using namespace adore::sim;

namespace {

core::CoreOptions toCoreOptions(const NodeOptions &Opts) {
  core::CoreOptions C;
  C.ElectionTimeoutMinUs = Opts.ElectionTimeoutMinUs;
  C.ElectionTimeoutMaxUs = Opts.ElectionTimeoutMaxUs;
  C.HeartbeatUs = Opts.HeartbeatUs;
  C.MaxEntriesPerAppend = Opts.MaxEntriesPerAppend;
  C.DisableVoteStickiness = Opts.DisableVoteStickiness;
  return C;
}

} // namespace

RaftNode::RaftNode(
    NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
    NodeOptions Opts, EventQueue &Queue, uint64_t Seed,
    std::function<void(SimMsg)> Send,
    std::function<void(NodeId, size_t, const SimLogEntry &)> OnApply)
    : Queue(&Queue),
      Core(Id, Scheme, std::move(InitialConf), toCoreOptions(Opts), Seed),
      SendFn(std::move(Send)), ApplyFn(std::move(OnApply)) {}

bool RaftNode::submit(MethodId Method, uint64_t ClientSeq) {
  core::Effects Effs;
  bool Accepted = Core.submit(Method, ClientSeq, Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

bool RaftNode::requestReconfig(const Config &NewConf) {
  core::Effects Effs;
  bool Accepted = Core.requestReconfig(NewConf, Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

bool RaftNode::transferLeadership(NodeId Target) {
  core::Effects Effs;
  bool Accepted = Core.transferLeadership(Target, Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

void RaftNode::dispatch(core::Effects Effs) {
  for (core::Effect &E : Effs) {
    switch (E.K) {
    case core::Effect::Kind::Send:
      SendFn(std::move(E.M));
      break;
    case core::Effect::Kind::SetTimer: {
      // The scheduled callback re-enters the core with the generation it
      // was armed under; the core rejects it if superseded. Effects the
      // firing produces are dispatched recursively.
      core::TimerId Timer = E.Timer;
      uint64_t Gen = E.TimerGen;
      Queue->scheduleAfter(E.DelayUs, [this, Timer, Gen] {
        dispatch(Core.onTimer(Timer, Gen, Queue->now()));
      });
      break;
    }
    case core::Effect::Kind::CancelTimer:
      // Nothing to do: a stale firing is rejected by generation.
      break;
    case core::Effect::Kind::Apply:
      ApplyFn(Core.id(), E.Index, E.Entry);
      break;
    case core::Effect::Kind::CommitAdvanced:
    case core::Effect::Kind::Persist:
      // The simulator models neither durable storage nor commit
      // subscriptions; crash() already preserves exactly the persistent
      // fields.
      break;
    case core::Effect::Kind::LeaderElected:
      if (OnLeader)
        OnLeader(Core.id(), E.Term);
      break;
    }
  }
}
