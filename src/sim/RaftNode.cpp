//===- sim/RaftNode.cpp - Executable Raft replica ---------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/RaftNode.h"

#include "support/Debug.h"

using namespace adore;
using namespace adore::sim;
using raft::EntryKind;

const char *adore::sim::roleName(Role R) {
  switch (R) {
  case Role::Follower:
    return "follower";
  case Role::Candidate:
    return "candidate";
  case Role::Leader:
    return "leader";
  }
  ADORE_UNREACHABLE("unknown role");
}

RaftNode::RaftNode(
    NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
    NodeOptions Opts, EventQueue &Queue, uint64_t Seed,
    std::function<void(SimMsg)> Send,
    std::function<void(NodeId, size_t, const SimLogEntry &)> OnApply)
    : Id(Id), Scheme(&Scheme), InitialConf(std::move(InitialConf)),
      Opts(Opts), Queue(&Queue), R(Seed), Send(std::move(Send)),
      OnApply(std::move(OnApply)) {}

void RaftNode::start() {
  updatePassivity(); // Spares outside the initial config stay passive.
  armElectionTimer();
}

//===----------------------------------------------------------------------===//
// Configuration helpers
//===----------------------------------------------------------------------===//

Config RaftNode::configOfPrefix(size_t Len) const {
  assert(Len <= Log.size() && "prefix out of range");
  for (size_t I = Len; I > 0; --I)
    if (Log[I - 1].Kind == EntryKind::Reconfig)
      return Log[I - 1].Conf;
  return InitialConf;
}

Config RaftNode::config() const { return configOfPrefix(Log.size()); }

bool RaftNode::logSatisfiesR2() const {
  for (size_t I = CommitIndex; I != Log.size(); ++I)
    if (Log[I].Kind == EntryKind::Reconfig)
      return false;
  return true;
}

bool RaftNode::logSatisfiesR3() const {
  for (size_t I = CommitIndex; I > 0; --I)
    if (Log[I - 1].Term == Term)
      return true;
  return false;
}

void RaftNode::updatePassivity() {
  // Hot semantics: the moment this node's log says it is no longer a
  // member, it stops initiating elections (it keeps answering messages,
  // which helps drain in-flight rounds).
  Passive = !Scheme->mbrs(config()).contains(Id);
  if (Passive && MyRole != Role::Follower) {
    MyRole = Role::Follower;
    Votes.clear();
  }
}

//===----------------------------------------------------------------------===//
// Timers
//===----------------------------------------------------------------------===//

void RaftNode::armElectionTimer() {
  uint64_t Gen = ++ElectionGen;
  SimTime Delay = R.nextInRange(Opts.ElectionTimeoutMinUs,
                                Opts.ElectionTimeoutMaxUs);
  Queue->scheduleAfter(Delay, [this, Gen] {
    if (Gen != ElectionGen || Crashed)
      return; // Timer was reset or the node is down.
    if (MyRole == Role::Leader || Passive) {
      armElectionTimer();
      return;
    }
    startElection();
  });
}

void RaftNode::armHeartbeatTimer() {
  uint64_t Gen = ++HeartbeatGen;
  Queue->scheduleAfter(Opts.HeartbeatUs, [this, Gen] {
    if (Gen != HeartbeatGen || MyRole != Role::Leader || Crashed)
      return;
    broadcastAppends();
    armHeartbeatTimer();
  });
}

//===----------------------------------------------------------------------===//
// Role transitions
//===----------------------------------------------------------------------===//

void RaftNode::stepDown(Time NewTerm) {
  if (NewTerm > Term) {
    Term = NewTerm;
    VotedFor.reset();
  }
  if (MyRole != Role::Follower) {
    MyRole = Role::Follower;
    Votes.clear();
  }
  ++HeartbeatGen; // Cancel leader heartbeats.
  armElectionTimer();
}

void RaftNode::startElection(bool Transfer) {
  Config Conf = config();
  if (!Scheme->mbrs(Conf).contains(Id))
    return; // Non-members never stand (Def. C.2 validity).
  Term += 1;
  MyRole = Role::Candidate;
  VotedFor = Id;
  Votes = NodeSet{Id};
  armElectionTimer(); // Retry with a fresh timeout if this one stalls.
  if (Scheme->isQuorum(Votes, Conf)) {
    becomeLeader();
    return;
  }
  for (NodeId Peer : Scheme->mbrs(Conf)) {
    if (Peer == Id)
      continue;
    SimMsg M;
    M.K = SimMsg::Kind::RequestVote;
    M.From = Id;
    M.To = Peer;
    M.Term = Term;
    M.LastLogTerm = lastLogTerm();
    M.LastLogIndex = lastLogIndex();
    M.TransferElection = Transfer;
    Send(M);
  }
}

void RaftNode::becomeLeader() {
  MyRole = Role::Leader;
  LeaderHint = Id;
  if (OnLeader)
    OnLeader(Id, Term);
  NextIndex.clear();
  MatchIndex.clear();
  for (NodeId Peer : Scheme->mbrs(config()))
    if (Peer != Id)
      NextIndex[Peer] = lastLogIndex() + 1;
  // Term-start no-op barrier: commits everything inherited and makes R3
  // satisfiable at this term.
  SimLogEntry Noop;
  Noop.Term = Term;
  Noop.Kind = EntryKind::Method;
  Noop.Method = 0;
  appendOwn(std::move(Noop));
  armHeartbeatTimer();
}

//===----------------------------------------------------------------------===//
// Message dispatch
//===----------------------------------------------------------------------===//

void RaftNode::crash() {
  Crashed = true;
  LeaderHint.reset();
  // Invalidate all armed timers; volatile leader state dies with us.
  ++ElectionGen;
  ++HeartbeatGen;
  MyRole = Role::Follower;
  Votes.clear();
  NextIndex.clear();
  MatchIndex.clear();
}

void RaftNode::restart() {
  if (!Crashed)
    return;
  Crashed = false;
  LeaderHint.reset();
  LastLeaderContactUs = 0;
  updatePassivity();
  armElectionTimer();
}

void RaftNode::receive(const SimMsg &M) {
  if (Crashed)
    return;
  switch (M.K) {
  case SimMsg::Kind::RequestVote:
    onRequestVote(M);
    return;
  case SimMsg::Kind::VoteReply:
    onVoteReply(M);
    return;
  case SimMsg::Kind::AppendEntries:
    onAppendEntries(M);
    return;
  case SimMsg::Kind::AppendReply:
    onAppendReply(M);
    return;
  case SimMsg::Kind::TimeoutNow:
    onTimeoutNow(M);
    return;
  }
  ADORE_UNREACHABLE("unknown message kind");
}

void RaftNode::onTimeoutNow(const SimMsg &M) {
  // Only honor a transfer from the current term's leader; stale
  // transfers from deposed leaders are ignored.
  if (M.Term < Term || Passive)
    return;
  startElection(/*Transfer=*/true);
}

void RaftNode::onRequestVote(const SimMsg &M) {
  // Vote stickiness (Raft §4.2.3): while we believe a leader is alive —
  // we are it, or we accepted its AppendEntries within the minimum
  // election timeout — ignore the request entirely, without even
  // adopting its term. A server campaigning on stale state (typically
  // one removed from the configuration while partitioned, which can
  // never learn of its removal) would otherwise depose healthy leaders
  // indefinitely. Deliberate leadership transfers are exempt.
  if (!M.TransferElection &&
      (MyRole == Role::Leader ||
       (LastLeaderContactUs != 0 &&
        Queue->now() < LastLeaderContactUs + Opts.ElectionTimeoutMinUs)))
    return;
  if (M.Term > Term)
    stepDown(M.Term);
  SimMsg Reply;
  Reply.K = SimMsg::Kind::VoteReply;
  Reply.From = Id;
  Reply.To = M.From;
  Reply.Term = Term;
  bool UpToDate =
      M.LastLogTerm > lastLogTerm() ||
      (M.LastLogTerm == lastLogTerm() && M.LastLogIndex >= lastLogIndex());
  Reply.Granted = M.Term == Term && MyRole == Role::Follower && UpToDate &&
                  (!VotedFor || *VotedFor == M.From);
  if (Reply.Granted) {
    VotedFor = M.From;
    armElectionTimer(); // Granting a vote defers our own candidacy.
  }
  Send(Reply);
}

void RaftNode::onVoteReply(const SimMsg &M) {
  if (M.Term > Term) {
    stepDown(M.Term);
    return;
  }
  if (MyRole != Role::Candidate || M.Term != Term || !M.Granted)
    return;
  Votes.insert(M.From);
  if (Scheme->isQuorum(Votes, config()))
    becomeLeader();
}

void RaftNode::onAppendEntries(const SimMsg &M) {
  SimMsg Reply;
  Reply.K = SimMsg::Kind::AppendReply;
  Reply.From = Id;
  Reply.To = M.From;
  if (M.Term < Term) {
    Reply.Term = Term;
    Reply.Success = false;
    Reply.MatchIndex = 0;
    Send(Reply);
    return;
  }
  stepDown(M.Term); // Also resets the election timer.
  LeaderHint = M.From;
  LastLeaderContactUs = Queue->now();
  Reply.Term = Term;

  // Consistency check on the previous slot.
  bool PrevOk = M.PrevIndex == 0 ||
                (M.PrevIndex <= Log.size() &&
                 Log[M.PrevIndex - 1].Term == M.PrevTerm);
  if (!PrevOk) {
    Reply.Success = false;
    // Hint: the longest prefix that could possibly match.
    Reply.MatchIndex = std::min(Log.size(), M.PrevIndex - 1);
    Send(Reply);
    return;
  }

  // Append, truncating conflicting suffixes.
  size_t Idx = M.PrevIndex;
  for (const SimLogEntry &E : M.Entries) {
    ++Idx;
    if (Idx <= Log.size()) {
      if (Log[Idx - 1].Term == E.Term)
        continue; // Already have it.
      Log.resize(Idx - 1); // Conflict: drop our suffix.
    }
    Log.push_back(E);
  }
  updatePassivity();
  size_t NewCommit = std::min(M.LeaderCommit, Log.size());
  if (NewCommit > CommitIndex)
    applyUpTo(NewCommit);
  Reply.Success = true;
  Reply.MatchIndex = std::max(Idx, M.PrevIndex + M.Entries.size());
  Send(Reply);
}

void RaftNode::onAppendReply(const SimMsg &M) {
  if (M.Term > Term) {
    stepDown(M.Term);
    return;
  }
  if (MyRole != Role::Leader || M.Term != Term)
    return;
  if (M.Success) {
    size_t &Match = MatchIndex[M.From];
    Match = std::max(Match, M.MatchIndex);
    NextIndex[M.From] = Match + 1;
    advanceCommit();
    // Keep streaming if the follower is still behind.
    if (Match < lastLogIndex())
      replicateTo(M.From);
    return;
  }
  // Back up and retry.
  size_t &Next = NextIndex[M.From];
  Next = std::max<size_t>(1, std::min(Next - 1, M.MatchIndex + 1));
  replicateTo(M.From);
}

//===----------------------------------------------------------------------===//
// Leader machinery
//===----------------------------------------------------------------------===//

void RaftNode::appendOwn(SimLogEntry Entry) {
  Log.push_back(std::move(Entry));
  updatePassivity();
  broadcastAppends();
  advanceCommit(); // Singleton configurations commit instantly.
}

void RaftNode::replicateTo(NodeId Peer) {
  size_t Next = NextIndex.count(Peer) ? NextIndex[Peer]
                                      : lastLogIndex() + 1;
  assert(Next >= 1 && "nextIndex must stay positive");
  SimMsg M;
  M.K = SimMsg::Kind::AppendEntries;
  M.From = Id;
  M.To = Peer;
  M.Term = Term;
  M.PrevIndex = Next - 1;
  M.PrevTerm = M.PrevIndex == 0 ? 0 : Log[M.PrevIndex - 1].Term;
  size_t End = std::min(Log.size(), M.PrevIndex + Opts.MaxEntriesPerAppend);
  for (size_t I = Next; I <= End; ++I)
    M.Entries.push_back(Log[I - 1]);
  M.LeaderCommit = CommitIndex;
  Send(M);
}

void RaftNode::broadcastAppends() {
  if (MyRole != Role::Leader)
    return;
  for (NodeId Peer : Scheme->mbrs(config())) {
    if (Peer == Id)
      continue;
    if (!NextIndex.count(Peer))
      NextIndex[Peer] = lastLogIndex() + 1; // Node joined just now.
    replicateTo(Peer);
  }
}

void RaftNode::advanceCommit() {
  for (size_t N = lastLogIndex(); N > CommitIndex; --N) {
    if (Log[N - 1].Term != Term)
      break; // Only own-term entries commit directly.
    NodeSet Replicated{Id};
    for (const auto &[Peer, Match] : MatchIndex)
      if (Match >= N)
        Replicated.insert(Peer);
    if (!Scheme->isQuorum(Replicated, configOfPrefix(N)))
      continue;
    applyUpTo(N);
    // Propagate the new commit index promptly.
    broadcastAppends();
    return;
  }
}

void RaftNode::applyUpTo(size_t Index) {
  assert(Index <= Log.size() && "applying past the log");
  CommitIndex = std::max(CommitIndex, Index);
  while (Applied < CommitIndex) {
    ++Applied;
    OnApply(Id, Applied, Log[Applied - 1]);
  }
}

//===----------------------------------------------------------------------===//
// Client-facing API
//===----------------------------------------------------------------------===//

bool RaftNode::submit(MethodId Method, uint64_t ClientSeq) {
  if (Crashed || MyRole != Role::Leader)
    return false;
  SimLogEntry E;
  E.Term = Term;
  E.Kind = EntryKind::Method;
  E.Method = Method;
  E.ClientSeq = ClientSeq;
  appendOwn(std::move(E));
  return true;
}

bool RaftNode::requestReconfig(const Config &NewConf) {
  if (Crashed || MyRole != Role::Leader)
    return false;
  if (!Scheme->isValidConfig(NewConf))
    return false;
  if (!Scheme->mbrs(NewConf).contains(Id))
    return false; // Leaders do not remove themselves.
  if (!Scheme->r1Plus(config(), NewConf))
    return false;
  if (!logSatisfiesR2() || !logSatisfiesR3())
    return false;
  NodeSet OldMembers = Scheme->mbrs(config());
  SimLogEntry E;
  E.Term = Term;
  E.Kind = EntryKind::Reconfig;
  E.Conf = NewConf;
  appendOwn(std::move(E));
  // Nodes leaving the configuration still receive this round so they
  // learn of their removal and go passive instead of campaigning
  // against the remaining members.
  for (NodeId Peer : OldMembers.differenceWith(Scheme->mbrs(NewConf))) {
    if (Peer == Id)
      continue;
    if (!NextIndex.count(Peer))
      NextIndex[Peer] = lastLogIndex();
    replicateTo(Peer);
  }
  return true;
}

bool RaftNode::transferLeadership(NodeId Target) {
  if (Crashed || MyRole != Role::Leader || Target == Id)
    return false;
  if (!Scheme->mbrs(config()).contains(Target))
    return false;
  // The target must hold our full log, or its immediate election would
  // lose to better-informed voters (and our uncommitted tail could die).
  auto It = MatchIndex.find(Target);
  if (It == MatchIndex.end() || It->second < lastLogIndex())
    return false;
  SimMsg M;
  M.K = SimMsg::Kind::TimeoutNow;
  M.From = Id;
  M.To = Target;
  M.Term = Term;
  Send(M);
  // Step aside so we do not compete with the fresh candidate. Keep the
  // term: the target's election will bump it past us.
  MyRole = Role::Follower;
  ++HeartbeatGen;
  armElectionTimer();
  return true;
}

std::string RaftNode::describe() const {
  std::string Out = "S" + std::to_string(Id) + "[" + roleName(MyRole) +
                    " t=" + std::to_string(Term) +
                    " log=" + std::to_string(Log.size()) +
                    " ci=" + std::to_string(CommitIndex) +
                    " cf=" + config().str();
  if (Passive)
    Out += " passive";
  Out += "]";
  return Out;
}
