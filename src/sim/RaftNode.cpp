//===- sim/RaftNode.cpp - Simulator host for the Raft core ------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/RaftNode.h"

#include "store/NodeStore.h"
#include "support/Debug.h"

#include <algorithm>

using namespace adore;
using namespace adore::sim;

namespace {

core::CoreOptions toCoreOptions(const NodeOptions &Opts) {
  core::CoreOptions C;
  C.ElectionTimeoutMinUs = Opts.ElectionTimeoutMinUs;
  C.ElectionTimeoutMaxUs = Opts.ElectionTimeoutMaxUs;
  C.HeartbeatUs = Opts.HeartbeatUs;
  C.MaxEntriesPerAppend = Opts.MaxEntriesPerAppend;
  C.DisableVoteStickiness = Opts.DisableVoteStickiness;
  C.EnableSuspicion = Opts.EnableSuspicion;
  C.SuspicionSuspectScore = Opts.SuspicionSuspectScore;
  C.SuspicionRecoverScore = Opts.SuspicionRecoverScore;
  C.EnableSnapshotCatchup = Opts.EnableSnapshotCatchup;
  C.SnapshotLagEntries = Opts.SnapshotLagEntries;
  C.SnapshotChunkBytes = Opts.SnapshotChunkBytes;
  C.EnableReadIndex = Opts.EnableReadIndex;
  C.EnableLease = Opts.EnableLease;
  C.LeaseDurationUs = Opts.LeaseDurationUs;
  C.MaxDriftPpm = Opts.MaxDriftPpm;
  C.EnableFollowerReads = Opts.EnableFollowerReads;
  C.TestIgnoreLeaseExpiry = Opts.TestIgnoreLeaseExpiry;
  return C;
}

} // namespace

RaftNode::RaftNode(
    NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
    NodeOptions Opts, EventQueue &Queue, uint64_t Seed,
    std::function<void(SimMsg)> Send,
    std::function<void(NodeId, size_t, const SimLogEntry &)> OnApply,
    store::NodeStore *Store)
    : Queue(&Queue),
      Core(Id, Scheme, std::move(InitialConf), toCoreOptions(Opts), Seed),
      SendFn(std::move(Send)), ApplyFn(std::move(OnApply)), Store(Store) {
  // Adopt whatever the store's directory already holds (usually nothing:
  // clusters start on fresh directories).
  if (Store)
    recoverFromStore(/*CheckAgainstCore=*/false);
}

void RaftNode::crash() {
  dispatch(Core.crash());
  if (Store)
    Store->crash(); // Power cut: the fault model mangles the directory.
}

void RaftNode::restart() {
  // Restarting a node that never crashed is a no-op; only a crashed
  // core may have durable state re-installed.
  if (Store && Core.isCrashed())
    recoverFromStore(/*CheckAgainstCore=*/true);
  dispatch(Core.restart());
}

void RaftNode::recoverFromStore(bool CheckAgainstCore) {
  auto Violation = [&](const std::string &What) {
    if (StoreViolations)
      StoreViolations->push_back("S" + std::to_string(Core.id()) +
                                 " store recovery: " + What);
  };

  store::RecoveredState RS = Store->open();
  if (RS.Error) {
    // Unrecoverable directory. Leave the idealized in-memory state in
    // place (so the run can proceed) but report the violation: under
    // the supported fault model this must never happen.
    Violation(*RS.Error);
    return;
  }

  if (CheckAgainstCore) {
    // Every Persist-carrying batch fsyncs before any of its effects
    // escape, so the only bytes a crash may cost are deferred Commit
    // records. Recovered term/vote/log must therefore match the
    // idealized in-memory copy EXACTLY — even with crash faults on —
    // and only the commit index may lag.
    if (RS.Term != Core.term())
      Violation("recovered term " + std::to_string(RS.Term) +
                " != in-memory " + std::to_string(Core.term()));
    if (RS.Vote != Core.votedFor())
      Violation("recovered vote differs from in-memory vote");
    if (RS.Log != Core.log())
      Violation("recovered log (" + std::to_string(RS.Log.size()) +
                " entries) differs from in-memory log (" +
                std::to_string(Core.log().size()) + " entries)");
    if (RS.CommitIndex > Core.commitIndex())
      Violation("recovered commit index " + std::to_string(RS.CommitIndex) +
                " ahead of in-memory " + std::to_string(Core.commitIndex()));
  }

  Core.installDurableState(RS.Term, RS.Vote, std::move(RS.Log),
                           RS.CommitIndex);
}

bool RaftNode::submit(MethodId Method, uint64_t ClientSeq) {
  core::Effects Effs;
  bool Accepted = Core.submit(Method, ClientSeq, Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

bool RaftNode::requestReconfig(const Config &NewConf) {
  core::Effects Effs;
  bool Accepted = Core.requestReconfig(NewConf, Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

bool RaftNode::transferLeadership(NodeId Target) {
  core::Effects Effs;
  bool Accepted = Core.transferLeadership(Target, Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

bool RaftNode::read(uint64_t ReadId) {
  core::Effects Effs;
  bool Accepted = Core.readQuery(ReadId, nowUs(), Effs);
  dispatch(std::move(Effs));
  return Accepted;
}

void RaftNode::dispatch(core::Effects Effs) {
  // Persist-before-act: the core emits Persist at the END of a step's
  // batch (after the Sends it must gate), so a store-backed host
  // flushes the whole durable delta up front. Persisting more than the
  // step strictly required is always safe; acting before the flush is
  // not. Store traffic consumes no virtual time and no cluster RNG
  // draws, so the event schedule is identical with the store on or off.
  if (Store && std::any_of(Effs.begin(), Effs.end(), [](const core::Effect &E) {
        return E.K == core::Effect::Kind::Persist;
      })) {
    Store->persistFrom(Core);
    Store->sync();
  }
  for (core::Effect &E : Effs) {
    switch (E.K) {
    case core::Effect::Kind::Send:
      SendFn(std::move(E.M));
      break;
    case core::Effect::Kind::SetTimer: {
      // The scheduled callback re-enters the core with the generation it
      // was armed under; the core rejects it if superseded. Effects the
      // firing produces are dispatched recursively.
      core::TimerId Timer = E.Timer;
      uint64_t Gen = E.TimerGen;
      Queue->scheduleAfter(E.DelayUs, [this, Timer, Gen] {
        dispatch(Core.onTimer(Timer, Gen, nowUs()));
      });
      break;
    }
    case core::Effect::Kind::CancelTimer:
      // Nothing to do: a stale firing is rejected by generation.
      break;
    case core::Effect::Kind::Apply:
      ApplyFn(Core.id(), E.Index, E.Entry);
      break;
    case core::Effect::Kind::CommitAdvanced:
      // Deferred durability: the commit record is appended now but only
      // fsynced by the NEXT sync barrier, so a crash can lose it — which
      // is safe, since recovery re-derives commits from the quorum.
      if (Store)
        Store->noteCommit(E.Index);
      break;
    case core::Effect::Kind::Persist:
      // Handled by the pre-pass above (in-memory mode: crash() already
      // preserves exactly the persistent fields by fiat).
      break;
    case core::Effect::Kind::LeaderElected:
      if (OnLeader)
        OnLeader(Core.id(), E.Term);
      break;
    case core::Effect::Kind::ReplicaSuspected:
      if (OnSuspicion)
        OnSuspicion(Core.id(), E.Peer, /*Suspected=*/true);
      break;
    case core::Effect::Kind::ReplicaRecovered:
      if (OnSuspicion)
        OnSuspicion(Core.id(), E.Peer, /*Suspected=*/false);
      break;
    case core::Effect::Kind::ReadReady:
      if (OnRead)
        OnRead(Core.id(), E.ReadId, /*Ok=*/true, E.Index);
      break;
    case core::Effect::Kind::ReadFailed:
      if (OnRead)
        OnRead(Core.id(), E.ReadId, /*Ok=*/false, 0);
      break;
    }
  }
}
