//===- sim/Cluster.h - Simulated Raft cluster + client --------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated deployment substrate for the Fig. 16 reproduction: a
/// set of executable RaftNodes connected by a latency/loss network model
/// over the discrete-event queue, plus a retrying client (with leader
/// redirect hints) and an admin interface for membership changes. All
/// latencies are virtual microseconds, so experiments are exactly
/// reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_SIM_CLUSTER_H
#define ADORE_SIM_CLUSTER_H

#include "sim/RaftNode.h"
#include "store/NodeStore.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace adore {
namespace sim {

/// Network link model: uniform latency plus Bernoulli loss, duplication,
/// and occasional latency spikes (which reorder traffic: a spiked message
/// is overtaken by everything sent shortly after it).
struct LinkOptions {
  SimTime LatencyMinUs = 300;
  SimTime LatencyMaxUs = 1500;
  /// Chance (out of 1000) a message is silently dropped.
  unsigned DropPermille = 0;
  /// Chance (out of 1000) a message is delivered twice; the duplicate
  /// takes an independent latency draw, so it can arrive far later.
  unsigned DupPermille = 0;
  /// Chance (out of 1000) a message suffers a latency spike of up to
  /// ReorderJitterUs extra delay on top of the base draw.
  unsigned ReorderPermille = 0;
  SimTime ReorderJitterUs = 0;
};

/// Cluster-level knobs.
struct ClusterOptions {
  NodeOptions Node;
  LinkOptions Link;
  /// Client gives up waiting for a response and retries after this long.
  SimTime ClientTimeoutUs = 400000;
  /// Small pause before a redirected/failed retry.
  SimTime ClientRetryDelayUs = 5000;
  /// Back every node with a WAL+snapshot store on a shared in-memory
  /// fault-injecting disk: crash() powers the disk down (per StoreFaults)
  /// and restart() recovers from what survived instead of trusting
  /// memory. Off, crashes preserve durable state by fiat (the idealized
  /// model the store-backed mode is differentially tested against).
  bool DurableStore = false;
  /// Crash-time disk fault model (only meaningful with DurableStore).
  store::MemVfsFaults StoreFaults;
  /// WAL segment-rotation / snapshot-compaction thresholds.
  store::StoreOptions Store;
};

/// A whole simulated deployment: nodes, network, client, admin.
class Cluster {
public:
  /// \p Universe enumerates every node id that may ever participate
  /// (spares included); nodes outside the initial configuration start
  /// passive and awaken when a reconfiguration admits them.
  ///
  /// \p SharedQueue lets several Clusters (the sharded pool's groups)
  /// run interleaved in one virtual timeline; null means this cluster
  /// owns a private queue, which is the original single-group behavior
  /// byte-for-byte.
  Cluster(const ReconfigScheme &Scheme, Config InitialConf,
          NodeSet Universe, ClusterOptions Opts, uint64_t Seed,
          EventQueue *SharedQueue = nullptr);

  EventQueue &queue() { return *Q; }
  const ReconfigScheme &scheme() const { return *Scheme; }

  /// Arms all election timers.
  void start();

  /// Runs the simulation until some node leads (or \p MaxWait virtual
  /// time passes); returns the leader if one emerged.
  std::optional<NodeId> runUntilLeader(SimTime MaxWaitUs);

  /// The current leader with the highest term, if any.
  std::optional<NodeId> leader() const;

  RaftNode &node(NodeId Id);
  const RaftNode &node(NodeId Id) const;
  const NodeSet &universe() const { return Universe; }

  /// Fault injection: fail-stop and restart a node.
  void crash(NodeId Id) { node(Id).crash(); }
  void restart(NodeId Id) { node(Id).restart(); }

  /// Network partition: splits the universe into \p SideA and the rest;
  /// messages crossing the cut are dropped until heal() is called.
  /// (Client/admin requests are not partitioned — the client is
  /// modeled as able to reach any node.)
  void partition(NodeSet SideA) { Partition = std::move(SideA); }
  void heal() { Partition.reset(); }
  bool isPartitioned() const { return Partition.has_value(); }

  /// Directional cut: messages From -> To are dropped while the reverse
  /// direction keeps flowing (asymmetric failures — a node that can send
  /// heartbeats but never hears the replies).
  void cutLink(NodeId From, NodeId To) { CutLinks.emplace(From, To); }
  void healLink(NodeId From, NodeId To) { CutLinks.erase({From, To}); }
  void healAllLinks() { CutLinks.clear(); }
  bool isLinkCut(NodeId From, NodeId To) const {
    return CutLinks.count({From, To}) != 0;
  }
  size_t activeCuts() const { return CutLinks.size(); }

  /// Swaps the live link model; the nemesis uses this for duplication
  /// storms and latency-spike phases.
  void setLinkOptions(const LinkOptions &Link) { Opts.Link = Link; }
  const LinkOptions &linkOptions() const { return Opts.Link; }

  /// Per-node clock skew (virtual microseconds, may be negative): the
  /// node's protocol handlers see queue-now + skew. This is the lease
  /// tiers' drift adversary — the clock-drift nemesis keeps skews
  /// within the declared CoreOptions::MaxDriftPpm envelope (or pushes
  /// beyond it to demonstrate the declared bound is load-bearing).
  void setClockSkew(NodeId Id, int64_t SkewUs) {
    node(Id).setClockSkew(SkewUs);
  }
  int64_t clockSkew(NodeId Id) const { return node(Id).clockSkew(); }

  //===--------------------------------------------------------------===//
  // Client and admin
  //===--------------------------------------------------------------===//

  /// Submits a command; \p Done fires (in virtual time) with success and
  /// the end-to-end latency once the command is committed and the
  /// response delivered, or with Ok=false if retries exhaust MaxTriesUs.
  void submit(MethodId Method,
              std::function<void(bool Ok, SimTime LatencyUs)> Done,
              SimTime MaxTriesUs = 5000000);

  /// Requests a membership change; \p Done fires when the entry commits
  /// somewhere (with latency) or the attempt times out.
  void requestReconfig(Config NewConf,
                       std::function<void(bool Ok, SimTime LatencyUs)> Done,
                       SimTime MaxTriesUs = 10000000);

  /// Linearizable read through the protocol read path (requires a read
  /// tier in Opts.Node, e.g. EnableReadIndex). \p Done fires with
  /// success, the node that served the read, and the safe index it was
  /// served at — by then that node's applied state machine covers the
  /// index, so reading its replica is linearizable. With \p AtFollower
  /// the first attempt targets a live non-leader replica (tier-3
  /// follower reads); any failure falls back to the leader, mirroring
  /// the NACK retry-at-leader client policy.
  void read(std::function<void(bool Ok, NodeId Server, size_t SafeIndex,
                               SimTime LatencyUs)>
                Done,
            bool AtFollower = false, SimTime MaxTriesUs = 5000000);

  /// Registers a hook observing every (node, index, entry) application;
  /// hooks fire in registration order. Used by the replicated KV store
  /// and by the chaos harness's committed-ledger invariant.
  void addApplyHook(
      std::function<void(NodeId, size_t, const SimLogEntry &)> Hook) {
    ApplyHooks.push_back(std::move(Hook));
  }

  //===--------------------------------------------------------------===//
  // Inspection
  //===--------------------------------------------------------------===//

  /// Slot-by-slot agreement of committed prefixes across all nodes.
  std::optional<std::string> checkCommittedAgreement() const;

  size_t messagesSent() const { return MessagesSent; }
  /// Total drops, and the per-cause breakdown: partition/directional-cut
  /// drops vs. random Bernoulli loss.
  size_t messagesDropped() const { return DroppedByCut + DroppedByLoss; }
  size_t messagesDroppedByCut() const { return DroppedByCut; }
  size_t messagesDroppedByLoss() const { return DroppedByLoss; }
  size_t messagesDuplicated() const { return MessagesDuplicated; }

  /// Every election win observed, as term -> winner. A term that two
  /// distinct nodes claimed is an election-safety violation, reported by
  /// checkLeaderUniqueness().
  const std::map<Time, NodeId> &leadersByTerm() const {
    return LeadersByTerm;
  }
  std::optional<std::string> checkLeaderUniqueness() const {
    return LeaderOverlap;
  }

  /// Store-backed mode: recovery cross-check failures (recovered state
  /// diverging from the idealized in-memory copy) and unrecoverable
  /// directories. Always empty in in-memory mode.
  const std::vector<std::string> &storeViolations() const {
    return StoreViolationsVec;
  }

  /// Store-backed mode: per-node store counters summed cluster-wide.
  store::StoreStats storeStats() const;

  std::string dump() const;

private:
  struct PendingOp {
    bool IsReconfig = false;
    MethodId Method = 0;
    Config Conf;
    SimTime SubmittedAt = 0;
    SimTime Deadline = 0;
    uint64_t Attempt = 0;
    bool Settled = false;
    std::function<void(bool, SimTime)> Done;
  };

  struct PendingReadOp {
    SimTime SubmittedAt = 0;
    SimTime Deadline = 0;
    bool AtFollower = false;
    uint64_t Attempt = 0;
    bool Settled = false;
    std::function<void(bool, NodeId, size_t, SimTime)> Done;
  };

  void sendMsg(SimMsg M);
  void onApply(NodeId Node, size_t Index, const SimLogEntry &E);
  void noteLeader(NodeId Leader, Time Term);
  void attempt(uint64_t Seq);
  void settle(uint64_t Seq, bool Ok);
  NodeId pickTarget();
  void attemptRead(uint64_t Seq);
  void settleRead(uint64_t Seq, bool Ok, NodeId Server, size_t Index);
  void onReadDone(NodeId Server, uint64_t ReadId, bool Ok, size_t Index);

  const ReconfigScheme *Scheme;
  Config InitialConf;
  NodeSet Universe;
  ClusterOptions Opts;
  /// Owned when constructed without a shared queue; Q points at either
  /// OwnQueue or the caller's shared timeline.
  std::unique_ptr<EventQueue> OwnQueue;
  EventQueue *Q;
  Rng R;
  /// Declared before Nodes: stores must outlive the nodes holding
  /// pointers into them (destruction runs bottom-up).
  std::unique_ptr<store::MemVfs> Disk;
  std::map<NodeId, std::unique_ptr<store::NodeStore>> Stores;
  std::vector<std::string> StoreViolationsVec;
  std::map<NodeId, std::unique_ptr<RaftNode>> Nodes;
  std::map<uint64_t, PendingOp> Pending;
  uint64_t NextSeq = 1;
  std::map<uint64_t, PendingReadOp> PendingReads;
  /// Per-attempt core-level read id -> client read op. Each attempt
  /// gets a fresh id so a late outcome from an abandoned attempt can
  /// never settle a newer one.
  std::map<uint64_t, uint64_t> ReadAttemptToSeq;
  uint64_t NextReadSeq = 1;
  uint64_t NextReadAttemptId = 1;
  size_t MessagesSent = 0;
  size_t DroppedByCut = 0;
  size_t DroppedByLoss = 0;
  size_t MessagesDuplicated = 0;
  std::optional<NodeId> LastKnownLeader;
  std::optional<NodeSet> Partition;
  std::set<std::pair<NodeId, NodeId>> CutLinks;
  std::map<Time, NodeId> LeadersByTerm;
  std::optional<std::string> LeaderOverlap;
  std::vector<std::function<void(NodeId, size_t, const SimLogEntry &)>>
      ApplyHooks;
};

} // namespace sim
} // namespace adore

#endif // ADORE_SIM_CLUSTER_H
