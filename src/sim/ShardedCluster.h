//===- sim/ShardedCluster.h - N consensus groups, one timeline -*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated sharded pool: one metadata consensus group (group 0)
/// whose replicated state machine is the pool map, plus N independent
/// data groups, all interleaved on a single discrete-event queue so a
/// whole multi-group deployment stays deterministic in one seed.
///
/// The map lifecycle mirrors the single-object reconfiguration story at
/// pool scale: a map change is *proposed* as an ordinary command to the
/// metadata group, becomes *committed* when that group applies it (the
/// committed ledger of group 0 is the authoritative map history), and
/// then *propagates* — each data group's server-side view catches up
/// after a broadcast latency, and clients catch up lazily via
/// WrongGroup NACKs. Between commit and propagation the system is
/// intentionally inconsistent; the generation arithmetic (strict
/// monotonicity everywhere, checked post-run) is what keeps that window
/// safe.
///
/// Node ids are group-disjoint (group g owns ids g*1000+1 ...), so any
/// node id names its group, and store-backed groups land in disjoint
/// per-group WAL/snapshot directories.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_SIM_SHARDEDCLUSTER_H
#define ADORE_SIM_SHARDEDCLUSTER_H

#include "shard/PoolMap.h"
#include "shard/ShardedKvClient.h"
#include "sim/Cluster.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace sim {

/// Sharded-pool knobs. Group-level options (network, timers, durable
/// store) apply uniformly to the metadata group and every data group.
struct ShardedClusterOptions {
  ClusterOptions Group;
  /// Number of data groups (the metadata group is extra).
  uint32_t Groups = 2;
  uint32_t NumShards = 16;
  /// Initial members / spare nodes per data group.
  uint32_t Members = 3;
  uint32_t Spares = 2;
  /// Metadata group size (no spares; migrations never touch group 0).
  uint32_t MetaMembers = 3;
  /// Commit-to-server-view propagation delay of a new pool map.
  SimTime MapBroadcastLatencyUs = 2000;
  /// Client map-fetch round trip.
  SimTime MapFetchLatencyUs = 1000;
};

/// The pool: meta group + data groups sharing one virtual timeline.
class ShardedCluster {
public:
  ShardedCluster(const ReconfigScheme &Scheme, ShardedClusterOptions Opts,
                 uint64_t Seed);

  EventQueue &queue() { return Queue; }
  const ReconfigScheme &scheme() const { return *Scheme; }
  const ShardedClusterOptions &options() const { return Opts; }

  uint32_t dataGroups() const { return Opts.Groups; }
  Cluster &meta() { return group(shard::MetaGroupId); }
  Cluster &group(shard::GroupId G);
  const Cluster &group(shard::GroupId G) const;
  /// The spare-inclusive node universe of data group \p G.
  NodeSet groupUniverse(shard::GroupId G) const;

  /// Arms every group's election timers.
  void start();

  /// Runs until every group (meta included) has a leader, or \p MaxWaitUs
  /// virtual time passes; true iff all groups lead.
  bool runUntilAllLeaders(SimTime MaxWaitUs);

  //===--------------------------------------------------------------===//
  // Pool map
  //===--------------------------------------------------------------===//

  /// The latest map committed by the metadata group.
  const shard::PoolMap &committedMap() const { return Committed; }

  /// Generation of data group \p G's server-side view (lags committedMap
  /// by the broadcast latency).
  uint64_t serverGen(shard::GroupId G) const {
    return ServerView[G].Generation;
  }

  /// Proposes \p NewMap as a command to the metadata group. \p Done fires
  /// with true iff the proposal committed *and* was installed (its
  /// generation was exactly committed+1 at apply time — a concurrent
  /// competing proposal loses and gets false).
  void proposeMap(shard::PoolMap NewMap, std::function<void(bool)> Done,
                  SimTime MaxTriesUs = 10000000);

  /// Server-side admission check a data group runs on every routed
  /// request: NACK with the group's current generation when the request
  /// was stamped with an older map, or when the group's own view says it
  /// does not own the shard.
  std::optional<shard::WrongGroupNack>
  ingressCheck(shard::GroupId G, uint32_t Shard, uint64_t ClientGen) const;

  /// Client map refetch: delivers the committed map after the fetch
  /// latency (the metadata group's leader answering a linearizable read).
  void fetchMap(std::function<void(const shard::PoolMap &)> Done);

  //===--------------------------------------------------------------===//
  // Inspection
  //===--------------------------------------------------------------===//

  /// Generation-monotonicity audit: every committed-map install must be
  /// strictly newer, every server-view install non-decreasing. Empty
  /// means the invariant held.
  const std::vector<std::string> &mapViolations() const {
    return MapViolationsVec;
  }

  /// Number of installed (effective) map changes past the initial map.
  uint64_t mapChangesCommitted() const { return MapChanges; }

  /// A seed forked from this pool's master stream for client-side
  /// randomness (retry jitter), independent of the group streams.
  uint64_t clientSeed() const { return ClientSeed; }

private:
  void onMetaApply(size_t Index, MethodId Method);
  void installCommitted(const shard::PoolMap &M);

  const ReconfigScheme *Scheme;
  ShardedClusterOptions Opts;
  /// The shared timeline; declared before the groups, which hold a
  /// pointer into it (destruction runs bottom-up).
  EventQueue Queue;
  /// Indexed by GroupId; slot 0 is the metadata group.
  std::vector<std::unique_ptr<Cluster>> GroupClusters;

  shard::PoolMap Committed;
  /// Per-group server-side map view, indexed by GroupId.
  std::vector<shard::PoolMap> ServerView;
  /// Outstanding map proposals keyed by their metadata-group ticket.
  std::map<MethodId, shard::PoolMap> Proposals;
  /// Tickets whose map actually became the committed map.
  std::map<MethodId, bool> Installed;
  MethodId NextTicket = 1;
  /// First-apply-wins guard over the metadata ledger.
  size_t MetaIndexSeen = 0;
  uint64_t MapChanges = 0;
  uint64_t ClientSeed = 1;
  std::vector<std::string> MapViolationsVec;
};

} // namespace sim
} // namespace adore

#endif // ADORE_SIM_SHARDEDCLUSTER_H
