//===- sim/EventQueue.h - Discrete-event simulation core ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal discrete-event simulator: a virtual clock and a min-heap of
/// timestamped callbacks. Everything in the executable cluster —
/// message deliveries, election timeouts, heartbeats, client retries —
/// is an event here, which makes wall-clock-independent, perfectly
/// reproducible latency experiments possible (the Fig. 16 reproduction
/// measures *virtual* microseconds).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_SIM_EVENTQUEUE_H
#define ADORE_SIM_EVENTQUEUE_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace adore {
namespace sim {

/// Virtual time in microseconds.
using SimTime = uint64_t;

/// The simulator's event queue and clock.
class EventQueue {
public:
  /// Schedules \p Fn to run at absolute virtual time \p At (>= now).
  void scheduleAt(SimTime At, std::function<void()> Fn) {
    assert(At >= Clock && "scheduling into the past");
    Heap.push(Event{At, NextSeq++, std::move(Fn)});
  }

  /// Schedules \p Fn to run \p Delay microseconds from now.
  void scheduleAfter(SimTime Delay, std::function<void()> Fn) {
    scheduleAt(Clock + Delay, std::move(Fn));
  }

  /// Current virtual time.
  SimTime now() const { return Clock; }

  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  /// Pops and executes the next event; returns false when none remain.
  bool runNext() {
    if (Heap.empty())
      return false;
    // Moving the function out before execution lets the handler
    // schedule further events safely.
    Event E = std::move(const_cast<Event &>(Heap.top()));
    Heap.pop();
    Clock = E.At;
    E.Fn();
    return true;
  }

  /// Runs events until the clock passes \p Until or the queue drains.
  void runUntil(SimTime Until) {
    while (!Heap.empty() && Heap.top().At <= Until)
      runNext();
    Clock = std::max(Clock, Until);
  }

  /// Runs until \p Pred() holds or the queue drains; returns Pred().
  template <typename PredT> bool runUntilPred(PredT &&Pred) {
    while (!Pred()) {
      if (!runNext())
        return false;
    }
    return true;
  }

private:
  struct Event {
    SimTime At;
    uint64_t Seq; // FIFO tie-break for determinism.
    std::function<void()> Fn;
    bool operator>(const Event &RHS) const {
      return std::tie(At, Seq) > std::tie(RHS.At, RHS.Seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> Heap;
  SimTime Clock = 0;
  uint64_t NextSeq = 0;
};

} // namespace sim
} // namespace adore

#endif // ADORE_SIM_EVENTQUEUE_H
