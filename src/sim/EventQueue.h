//===- sim/EventQueue.h - Discrete-event simulation core ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal discrete-event simulator: a virtual clock and a min-heap of
/// timestamped callbacks. Everything in the executable cluster —
/// message deliveries, election timeouts, heartbeats, client retries —
/// is an event here, which makes wall-clock-independent, perfectly
/// reproducible latency experiments possible (the Fig. 16 reproduction
/// measures *virtual* microseconds).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_SIM_EVENTQUEUE_H
#define ADORE_SIM_EVENTQUEUE_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

namespace adore {
namespace sim {

/// Virtual time in microseconds.
using SimTime = uint64_t;

/// Counters the queue keeps about its own operation, surfaced in run
/// reports alongside the domain counters.
struct QueueStats {
  /// scheduleAt calls whose requested time was already in the past and
  /// were clamped to "now". A handful is normal in fault scenarios
  /// (callers computing deadlines from pre-fault observations); a large
  /// count signals a scheduling bug.
  uint64_t ClampedPastSchedules = 0;
};

/// The simulator's event queue and clock.
class EventQueue {
public:
  /// Schedules \p Fn to run at absolute virtual time \p At. Requests in
  /// the past are clamped to the current time (and counted, see
  /// QueueStats) rather than rejected: a real host faced with an
  /// already-expired deadline fires it immediately, and the clamp keeps
  /// the executed order deterministic (FIFO among same-time events).
  void scheduleAt(SimTime At, std::function<void()> Fn) {
    if (At < Clock) {
      At = Clock;
      ++Stats.ClampedPastSchedules;
    }
    Heap.push_back(Event{At, NextSeq++, std::move(Fn)});
    std::push_heap(Heap.begin(), Heap.end(), Event::later);
  }

  /// Schedules \p Fn to run \p Delay microseconds from now.
  void scheduleAfter(SimTime Delay, std::function<void()> Fn) {
    scheduleAt(Clock + Delay, std::move(Fn));
  }

  /// Current virtual time.
  SimTime now() const { return Clock; }

  bool empty() const { return Heap.empty(); }
  size_t size() const { return Heap.size(); }

  /// Pops and executes the next event; returns false when none remain.
  bool runNext() {
    if (Heap.empty())
      return false;
    // Extracting the event before execution lets the handler schedule
    // further events safely.
    std::pop_heap(Heap.begin(), Heap.end(), Event::later);
    Event E = std::move(Heap.back());
    Heap.pop_back();
    Clock = E.At;
    E.Fn();
    return true;
  }

  /// Runs events until the clock passes \p Until or the queue drains.
  void runUntil(SimTime Until) {
    while (!Heap.empty() && Heap.front().At <= Until)
      runNext();
    Clock = std::max(Clock, Until);
  }

  /// Runs until \p Pred() holds or the queue drains; returns Pred().
  template <typename PredT> bool runUntilPred(PredT &&Pred) {
    while (!Pred()) {
      if (!runNext())
        return false;
    }
    return true;
  }

  /// Operational counters (see QueueStats).
  const QueueStats &stats() const { return Stats; }

private:
  struct Event {
    SimTime At;
    uint64_t Seq; // FIFO tie-break for determinism.
    std::function<void()> Fn;
    /// Min-heap comparator: with std::push_heap/pop_heap this keeps the
    /// earliest (At, Seq) event at the front.
    static bool later(const Event &LHS, const Event &RHS) {
      return std::tie(LHS.At, LHS.Seq) > std::tie(RHS.At, RHS.Seq);
    }
  };

  // A plain vector managed with the <algorithm> heap primitives instead
  // of std::priority_queue: top() of the latter is const-only, which
  // forced a const_cast to move the handler out before popping.
  std::vector<Event> Heap;
  SimTime Clock = 0;
  uint64_t NextSeq = 0;
  QueueStats Stats;
};

} // namespace sim
} // namespace adore

#endif // ADORE_SIM_EVENTQUEUE_H
