//===- sim/Cluster.cpp - Simulated Raft cluster + client --------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/Cluster.h"

#include <cassert>

using namespace adore;
using namespace adore::sim;
using raft::EntryKind;

Cluster::Cluster(const ReconfigScheme &Scheme, Config InitialConf,
                 NodeSet Universe, ClusterOptions Opts, uint64_t Seed,
                 EventQueue *SharedQueue)
    : Scheme(&Scheme), InitialConf(InitialConf),
      Universe(std::move(Universe)), Opts(Opts),
      OwnQueue(SharedQueue ? nullptr : std::make_unique<EventQueue>()),
      Q(SharedQueue ? SharedQueue : OwnQueue.get()), R(Seed) {
  assert(Scheme.mbrs(InitialConf).isSubsetOf(this->Universe) &&
         "initial members must be in the universe");
  if (Opts.DurableStore) {
    // The disk seed is derived from the cluster seed WITHOUT drawing
    // from R: the cluster's own draw sequence (node forks, network
    // rolls) must be byte-identical with the store on or off, which is
    // what the differential chaos test pins.
    Disk = std::make_unique<store::MemVfs>(Seed ^ 0xD15CFA017ULL,
                                           Opts.StoreFaults);
    for (NodeId Id : this->Universe) {
      auto St = std::make_unique<store::NodeStore>(
          *Disk, "n" + std::to_string(Id), Opts.Store);
      store::NodeStore *Ptr = St.get();
      St->setCrashHook([this, Ptr] { Disk->crashDir(Ptr->dir() + "/"); });
      Stores.emplace(Id, std::move(St));
    }
  }
  for (NodeId Id : this->Universe) {
    Rng NodeRng = R.fork();
    store::NodeStore *St =
        Opts.DurableStore ? Stores.at(Id).get() : nullptr;
    Nodes.emplace(
        Id, std::make_unique<RaftNode>(
                Id, Scheme, InitialConf, Opts.Node, *Q, NodeRng.next(),
                [this](SimMsg M) { sendMsg(std::move(M)); },
                [this](NodeId N, size_t I, const SimLogEntry &E) {
                  onApply(N, I, E);
                },
                St));
  }
  for (auto &[Id, Node] : Nodes) {
    Node->setLeaderObserver(
        [this](NodeId Leader, Time Term) { noteLeader(Leader, Term); });
    Node->setStoreViolationSink(&StoreViolationsVec);
    Node->setReadObserver(
        [this](NodeId Server, uint64_t ReadId, bool Ok, size_t Index) {
          onReadDone(Server, ReadId, Ok, Index);
        });
  }
}

store::StoreStats Cluster::storeStats() const {
  store::StoreStats Sum;
  for (const auto &[Id, St] : Stores)
    Sum.accumulate(St->stats());
  return Sum;
}

void Cluster::noteLeader(NodeId Leader, Time Term) {
  auto [It, Fresh] = LeadersByTerm.emplace(Term, Leader);
  if (!Fresh && It->second != Leader && !LeaderOverlap)
    LeaderOverlap = "two leaders in term " + std::to_string(Term) +
                    ": S" + std::to_string(It->second) + " and S" +
                    std::to_string(Leader);
}

void Cluster::start() {
  for (auto &[Id, Node] : Nodes)
    Node->start();
}

RaftNode &Cluster::node(NodeId Id) {
  auto It = Nodes.find(Id);
  assert(It != Nodes.end() && "unknown node");
  return *It->second;
}

const RaftNode &Cluster::node(NodeId Id) const {
  auto It = Nodes.find(Id);
  assert(It != Nodes.end() && "unknown node");
  return *It->second;
}

std::optional<NodeId> Cluster::leader() const {
  std::optional<NodeId> Best;
  for (const auto &[Id, Node] : Nodes) {
    if (!Node->isLeader())
      continue;
    if (!Best || Node->term() > Nodes.at(*Best)->term())
      Best = Id;
  }
  return Best;
}

std::optional<NodeId> Cluster::runUntilLeader(SimTime MaxWaitUs) {
  SimTime Deadline = Q->now() + MaxWaitUs;
  while (Q->now() < Deadline) {
    if (auto L = leader())
      return L;
    if (!Q->runNext())
      break;
  }
  return leader();
}

//===----------------------------------------------------------------------===//
// Network
//===----------------------------------------------------------------------===//

void Cluster::sendMsg(SimMsg M) {
  ++MessagesSent;
  if (Partition &&
      Partition->contains(M.From) != Partition->contains(M.To)) {
    ++DroppedByCut; // The cut eats everything crossing it.
    return;
  }
  if (!CutLinks.empty() && CutLinks.count({M.From, M.To})) {
    ++DroppedByCut; // Directional cut: only this direction dies.
    return;
  }
  if (R.nextChance(Opts.Link.DropPermille, 1000)) {
    ++DroppedByLoss;
    return;
  }
  // The RNG draws below are guarded so that the draw sequence (and thus
  // every seed-pinned expectation) is unchanged when the chaos knobs are
  // at their defaults.
  unsigned Copies = 1;
  if (Opts.Link.DupPermille != 0 &&
      R.nextChance(Opts.Link.DupPermille, 1000)) {
    ++Copies;
    ++MessagesDuplicated;
  }
  for (unsigned I = 0; I != Copies; ++I) {
    SimTime Latency =
        R.nextInRange(Opts.Link.LatencyMinUs, Opts.Link.LatencyMaxUs);
    if (Opts.Link.ReorderJitterUs != 0 &&
        R.nextChance(Opts.Link.ReorderPermille, 1000))
      Latency += R.nextInRange(0, Opts.Link.ReorderJitterUs);
    Q->scheduleAfter(Latency, [this, M] {
      auto It = Nodes.find(M.To);
      if (It == Nodes.end())
        return; // Destination outside the universe: dropped.
      It->second->receive(M);
    });
  }
}

//===----------------------------------------------------------------------===//
// Client and admin
//===----------------------------------------------------------------------===//

NodeId Cluster::pickTarget() {
  if (LastKnownLeader && Nodes.count(*LastKnownLeader))
    return *LastKnownLeader;
  // No hint: ask a random member of some node's current configuration.
  NodeSet Members = Scheme->mbrs(InitialConf);
  for (const auto &[Id, Node] : Nodes)
    if (!Node->isPassive())
      Members = Members.unionWith(Scheme->mbrs(Node->config()));
  return Members[R.nextBelow(Members.size())];
}

void Cluster::submit(MethodId Method,
                     std::function<void(bool, SimTime)> Done,
                     SimTime MaxTriesUs) {
  uint64_t Seq = NextSeq++;
  PendingOp &Op = Pending[Seq];
  Op.Method = Method;
  Op.SubmittedAt = Q->now();
  Op.Deadline = Q->now() + MaxTriesUs;
  Op.Done = std::move(Done);
  attempt(Seq);
}

void Cluster::requestReconfig(Config NewConf,
                              std::function<void(bool, SimTime)> Done,
                              SimTime MaxTriesUs) {
  uint64_t Seq = NextSeq++;
  PendingOp &Op = Pending[Seq];
  Op.IsReconfig = true;
  Op.Conf = std::move(NewConf);
  Op.SubmittedAt = Q->now();
  Op.Deadline = Q->now() + MaxTriesUs;
  Op.Done = std::move(Done);
  attempt(Seq);
}

void Cluster::attempt(uint64_t Seq) {
  auto It = Pending.find(Seq);
  if (It == Pending.end() || It->second.Settled)
    return;
  PendingOp &Op = It->second;
  if (Q->now() >= Op.Deadline) {
    settle(Seq, false);
    return;
  }
  ++Op.Attempt;
  NodeId Target = pickTarget();
  // One network hop to reach the target.
  SimTime Hop = R.nextInRange(Opts.Link.LatencyMinUs,
                              Opts.Link.LatencyMaxUs);
  Q->scheduleAfter(Hop, [this, Seq, Target] {
    auto It = Pending.find(Seq);
    if (It == Pending.end() || It->second.Settled)
      return;
    PendingOp &Op = It->second;
    RaftNode &N = node(Target);
    if (N.isCrashed()) {
      // Dead silence: forget the stale hint and try elsewhere.
      if (LastKnownLeader == Target)
        LastKnownLeader.reset();
      Q->scheduleAfter(Opts.ClientRetryDelayUs,
                          [this, Seq] { attempt(Seq); });
      return;
    }
    // A change that removes the sitting leader needs a leadership
    // transfer first (Raft 3.10): hand off to a caught-up member of the
    // target configuration, then retry against the new leader.
    if (Op.IsReconfig && N.isLeader() &&
        !Scheme->mbrs(Op.Conf).contains(Target)) {
      for (NodeId Heir : Scheme->mbrs(Op.Conf))
        if (N.transferLeadership(Heir))
          break;
      LastKnownLeader.reset();
      Q->scheduleAfter(Opts.ClientRetryDelayUs * 4,
                          [this, Seq] { attempt(Seq); });
      return;
    }
    bool Accepted =
        Op.IsReconfig
            ? N.requestReconfig(Op.Conf)
            : N.submit(Op.Method, Seq);
    if (Accepted) {
      LastKnownLeader = Target;
      // Completion arrives via onApply; arm a retry in case the leader
      // falls (or is cut off) before committing. An unresponsive
      // accepted target loses the client's trust: retry elsewhere.
      Q->scheduleAfter(Opts.ClientTimeoutUs, [this, Seq, Target] {
        if (Pending.count(Seq) && LastKnownLeader == Target)
          LastKnownLeader.reset();
        attempt(Seq);
      });
      return;
    }
    // Rejected: follow the redirect hint (or try someone else soon).
    if (auto Hint = N.leaderHint())
      LastKnownLeader = *Hint;
    else
      LastKnownLeader.reset();
    Q->scheduleAfter(Opts.ClientRetryDelayUs,
                        [this, Seq] { attempt(Seq); });
  });
}

void Cluster::read(
    std::function<void(bool, NodeId, size_t, SimTime)> Done,
    bool AtFollower, SimTime MaxTriesUs) {
  uint64_t Seq = NextReadSeq++;
  PendingReadOp &Op = PendingReads[Seq];
  Op.SubmittedAt = Q->now();
  Op.Deadline = Q->now() + MaxTriesUs;
  Op.AtFollower = AtFollower;
  Op.Done = std::move(Done);
  attemptRead(Seq);
}

void Cluster::attemptRead(uint64_t Seq) {
  auto It = PendingReads.find(Seq);
  if (It == PendingReads.end() || It->second.Settled)
    return;
  PendingReadOp &Op = It->second;
  if (Q->now() >= Op.Deadline) {
    settleRead(Seq, false, InvalidNodeId, 0);
    return;
  }
  ++Op.Attempt;
  // Tier-3 first choice: a live non-leader replica; otherwise the
  // leader hint, like every other client request.
  NodeId Target = InvalidNodeId;
  if (Op.AtFollower) {
    std::optional<NodeId> L = leader();
    for (NodeId N : Universe) {
      const RaftNode &Cand = node(N);
      if (!Cand.isCrashed() && !Cand.isPassive() && (!L || *L != N)) {
        Target = N;
        break;
      }
    }
  }
  if (Target == InvalidNodeId)
    Target = pickTarget();
  SimTime Hop = R.nextInRange(Opts.Link.LatencyMinUs,
                              Opts.Link.LatencyMaxUs);
  Q->scheduleAfter(Hop, [this, Seq, Target] {
    auto It = PendingReads.find(Seq);
    if (It == PendingReads.end() || It->second.Settled)
      return;
    RaftNode &N = node(Target);
    if (N.isCrashed()) {
      if (LastKnownLeader == Target)
        LastKnownLeader.reset();
      Q->scheduleAfter(Opts.ClientRetryDelayUs,
                       [this, Seq] { attemptRead(Seq); });
      return;
    }
    uint64_t Rid = NextReadAttemptId++;
    ReadAttemptToSeq[Rid] = Seq;
    N.read(Rid);
    // A crashed target silently swallows pending reads (a dead node
    // sends nothing); arm a client-side timeout so the op retries.
    Q->scheduleAfter(Opts.ClientTimeoutUs, [this, Seq, Rid] {
      ReadAttemptToSeq.erase(Rid);
      attemptRead(Seq);
    });
  });
}

void Cluster::onReadDone(NodeId Server, uint64_t ReadId, bool Ok,
                         size_t Index) {
  auto MapIt = ReadAttemptToSeq.find(ReadId);
  if (MapIt == ReadAttemptToSeq.end())
    return; // Outcome of an abandoned (timed-out) attempt.
  uint64_t Seq = MapIt->second;
  ReadAttemptToSeq.erase(MapIt);
  auto It = PendingReads.find(Seq);
  if (It == PendingReads.end() || It->second.Settled)
    return;
  if (Ok) {
    // The response costs one more network hop back to the client.
    SimTime Hop = R.nextInRange(Opts.Link.LatencyMinUs,
                                Opts.Link.LatencyMaxUs);
    Q->scheduleAfter(Hop, [this, Seq, Server, Index] {
      settleRead(Seq, true, Server, Index);
    });
    return;
  }
  // NACK or mid-read leadership loss: fall back to the leader.
  It->second.AtFollower = false;
  Q->scheduleAfter(Opts.ClientRetryDelayUs,
                   [this, Seq] { attemptRead(Seq); });
}

void Cluster::settleRead(uint64_t Seq, bool Ok, NodeId Server,
                         size_t Index) {
  auto It = PendingReads.find(Seq);
  if (It == PendingReads.end() || It->second.Settled)
    return;
  It->second.Settled = true;
  SimTime Latency = Q->now() - It->second.SubmittedAt;
  auto Done = std::move(It->second.Done);
  PendingReads.erase(It);
  if (Done)
    Done(Ok, Server, Index, Latency);
}

void Cluster::settle(uint64_t Seq, bool Ok) {
  auto It = Pending.find(Seq);
  if (It == Pending.end() || It->second.Settled)
    return;
  It->second.Settled = true;
  SimTime Latency = Q->now() - It->second.SubmittedAt;
  auto Done = std::move(It->second.Done);
  Pending.erase(It);
  if (Done)
    Done(Ok, Latency);
}

void Cluster::onApply(NodeId Node, size_t Index, const SimLogEntry &E) {
  for (const auto &Hook : ApplyHooks)
    Hook(Node, Index, E);
  // Resolve the pending op this entry answers (first application wins;
  // the response costs one more network hop).
  uint64_t Seq = 0;
  if (E.Kind == EntryKind::Method && E.ClientSeq != 0 &&
      Pending.count(E.ClientSeq)) {
    Seq = E.ClientSeq;
  } else if (E.Kind == EntryKind::Reconfig) {
    for (auto &[S, Op] : Pending)
      if (Op.IsReconfig && !Op.Settled && Op.Conf == E.Conf) {
        Seq = S;
        break;
      }
  }
  if (Seq == 0)
    return;
  SimTime Hop = R.nextInRange(Opts.Link.LatencyMinUs,
                              Opts.Link.LatencyMaxUs);
  Q->scheduleAfter(Hop, [this, Seq] { settle(Seq, true); });
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

std::optional<std::string> Cluster::checkCommittedAgreement() const {
  for (auto A = Nodes.begin(); A != Nodes.end(); ++A) {
    for (auto B = std::next(A); B != Nodes.end(); ++B) {
      size_t Common = std::min(A->second->commitIndex(),
                               B->second->commitIndex());
      for (size_t I = 1; I <= Common; ++I) {
        const SimLogEntry &EA = A->second->entry(I);
        const SimLogEntry &EB = B->second->entry(I);
        if (EA.Term == EB.Term && EA.Method == EB.Method &&
            EA.Kind == EB.Kind && EA.Conf == EB.Conf)
          continue;
        return "committed disagreement between S" +
               std::to_string(A->first) + " and S" +
               std::to_string(B->first) + " at slot " + std::to_string(I);
      }
    }
  }
  return std::nullopt;
}

std::string Cluster::dump() const {
  std::string Out;
  for (const auto &[Id, Node] : Nodes) {
    Out += Node->describe();
    Out += "\n";
  }
  return Out;
}
