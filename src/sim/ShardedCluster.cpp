//===- sim/ShardedCluster.cpp - N consensus groups, one timeline ------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/ShardedCluster.h"

#include <cassert>

using namespace adore;
using namespace adore::sim;
using adore::shard::GroupId;
using adore::shard::MetaGroupId;
using adore::shard::PoolMap;

ShardedCluster::ShardedCluster(const ReconfigScheme &Scheme,
                               ShardedClusterOptions Opts, uint64_t Seed)
    : Scheme(&Scheme), Opts(Opts) {
  assert(Opts.Groups >= 1 && "need at least one data group");
  assert(Opts.NumShards >= 1 && "need at least one shard");
  Committed = shard::makeUniformPoolMap(Opts.Groups, Opts.NumShards,
                                        Opts.Members, Opts.Spares,
                                        Opts.MetaMembers);
  // Every group, server, and client boots already knowing generation 1:
  // the initial map is deployment configuration, not something learned.
  ServerView.assign(Opts.Groups + 1, Committed);

  // One master RNG stream forks a seed per group, so group g's node
  // timers and network rolls are independent of how many other groups
  // exist before it in construction order.
  Rng Master(Seed);
  GroupClusters.resize(Opts.Groups + 1);
  for (GroupId G = 0; G <= Opts.Groups; ++G) {
    uint64_t GroupSeed = Master.next();
    NodeId Base = shard::groupIdBase(G);
    uint32_t InitialCount = G == MetaGroupId ? Opts.MetaMembers : Opts.Members;
    Config Initial(NodeSet::range(Base + 1, InitialCount));
    NodeSet Universe =
        G == MetaGroupId
            ? NodeSet::range(Base + 1, Opts.MetaMembers)
            : NodeSet::range(Base + 1, Opts.Members + Opts.Spares);
    GroupClusters[G] = std::make_unique<Cluster>(
        Scheme, Initial, Universe, Opts.Group, GroupSeed, &Queue);
  }
  // Drawn after every group fork so adding it left the per-group seed
  // streams (and thus all pre-existing runs) bit-identical.
  ClientSeed = Master.next();

  meta().addApplyHook(
      [this](NodeId, size_t Index, const SimLogEntry &E) {
        if (E.Kind == raft::EntryKind::Method && E.Method != 0)
          onMetaApply(Index, E.Method);
      });
}

Cluster &ShardedCluster::group(GroupId G) {
  assert(G < GroupClusters.size() && "unknown group");
  return *GroupClusters[G];
}

const Cluster &ShardedCluster::group(GroupId G) const {
  assert(G < GroupClusters.size() && "unknown group");
  return *GroupClusters[G];
}

NodeSet ShardedCluster::groupUniverse(GroupId G) const {
  return group(G).universe();
}

void ShardedCluster::start() {
  for (auto &C : GroupClusters)
    C->start();
}

bool ShardedCluster::runUntilAllLeaders(SimTime MaxWaitUs) {
  auto AllLead = [this] {
    for (auto &C : GroupClusters)
      if (!C->leader())
        return false;
    return true;
  };
  SimTime Deadline = Queue.now() + MaxWaitUs;
  while (Queue.now() < Deadline && !AllLead())
    if (!Queue.runNext())
      break;
  return AllLead();
}

//===----------------------------------------------------------------------===//
// Pool map
//===----------------------------------------------------------------------===//

void ShardedCluster::proposeMap(PoolMap NewMap, std::function<void(bool)> Done,
                                SimTime MaxTriesUs) {
  assert(NewMap.valid() && "proposing a structurally invalid map");
  MethodId Ticket = NextTicket++;
  Proposals.emplace(Ticket, std::move(NewMap));
  meta().submit(
      Ticket,
      [this, Ticket, Done = std::move(Done)](bool Ok, SimTime) {
        // The apply hook ran before this response was scheduled, so the
        // install verdict for the ticket is already final on success.
        if (Done)
          Done(Ok && Installed[Ticket]);
      },
      MaxTriesUs);
}

void ShardedCluster::onMetaApply(size_t Index, MethodId Method) {
  // First application wins: every meta replica applies the same ledger,
  // so later applications of an index (other replicas, restarts) carry
  // no new information.
  if (Index <= MetaIndexSeen)
    return;
  MetaIndexSeen = Index;
  auto It = Proposals.find(Method);
  if (It == Proposals.end())
    return; // Not a map ticket (e.g. a leader's term-start noop).
  const PoolMap &M = It->second;
  // Compare-and-set on the generation: only the successor of the current
  // committed map installs. A concurrent competing proposal commits in
  // the metadata log too, but as a no-op — its proposer sees false and
  // re-reads the map before trying again.
  if (M.Generation != Committed.Generation + 1) {
    Installed[Method] = false;
    return;
  }
  installCommitted(M);
  Installed[Method] = true;
}

void ShardedCluster::installCommitted(const PoolMap &M) {
  if (M.Generation <= Committed.Generation) {
    MapViolationsVec.push_back(
        "pool map generation not monotone: committed gen " +
        std::to_string(M.Generation) + " after " +
        std::to_string(Committed.Generation));
    return;
  }
  Committed = M;
  ++MapChanges;
  // Propagate to every group's server-side view after the broadcast
  // latency. Views only move forward; a broadcast overtaken by a newer
  // one is ignored at delivery.
  Queue.scheduleAfter(Opts.MapBroadcastLatencyUs, [this, M] {
    for (PoolMap &View : ServerView) {
      if (M.Generation < View.Generation) {
        MapViolationsVec.push_back(
            "server view generation regressed: broadcast gen " +
            std::to_string(M.Generation) + " onto view gen " +
            std::to_string(View.Generation));
        continue;
      }
      if (M.Generation > View.Generation)
        View = M;
    }
  });
}

std::optional<shard::WrongGroupNack>
ShardedCluster::ingressCheck(GroupId G, uint32_t Shard,
                             uint64_t ClientGen) const {
  assert(G != MetaGroupId && G <= Opts.Groups && "not a data group");
  const PoolMap &View = ServerView[G];
  if (View.groupForShard(Shard) != G || ClientGen < View.Generation)
    return shard::WrongGroupNack{View.Generation};
  return std::nullopt;
}

void ShardedCluster::fetchMap(
    std::function<void(const PoolMap &)> Done) {
  Queue.scheduleAfter(Opts.MapFetchLatencyUs,
                      [this, Done = std::move(Done)] { Done(Committed); });
}
