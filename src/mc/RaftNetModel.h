//===- mc/RaftNetModel.h - Network-based Raft as a model ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts the asynchronous network-based Raft specification to the
/// Explorer interface, at per-message granularity: successors are every
/// local operation of every replica plus every possible single-message
/// delivery or loss. This is the state space a network-level
/// verification effort must reason over; comparing its size against
/// AdoreModel's under identical scenario bounds is the executable analog
/// of the paper's proof-effort comparison (Section 7): the abstraction
/// gap is measured in states instead of person-months.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_RAFTNETMODEL_H
#define ADORE_MC_RAFTNETMODEL_H

#include "raft/RaftSystem.h"

#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace mc {

/// Bounds for network-model exploration.
struct RaftNetModelOptions {
  /// Cap on any replica's term.
  Time MaxTerm = 2;
  /// Cap on any replica's log length.
  size_t MaxLog = 2;
  /// Cap on in-flight messages (past it, only deliveries/losses).
  size_t MaxPending = 8;
  /// Explore message-loss transitions too (doubles the network
  /// branching; losses are behaviourally relevant for liveness only, so
  /// default off for safety checking).
  bool ExploreLoss = false;
  /// Allow reconfig transitions.
  bool WithReconfig = true;
};

/// The network-based Raft transition system.
class RaftNetModel {
public:
  using State = raft::RaftSystem;

  RaftNetModel(const ReconfigScheme &Scheme, Config InitialConf,
               RaftNetModelOptions Opts = {},
               raft::RaftOptions ProtoOpts = {})
      : Scheme(&Scheme), InitialConf(std::move(InitialConf)), Opts(Opts),
        ProtoOpts(ProtoOpts) {}

  std::vector<State> initialStates() const {
    return {raft::RaftSystem(*Scheme, InitialConf, ProtoOpts)};
  }

  uint64_t fingerprint(const State &St) const { return St.fingerprint(); }

  /// Canonical byte encoding for the audit layer: injective where the
  /// fingerprint is merely collision-resistant.
  std::string encode(const State &St) const { return St.encode(); }

  /// Exact state identity under the checker's canonical equivalence.
  bool equal(const State &A, const State &B) const {
    return A.encode() == B.encode();
  }

  std::optional<std::string> invariant(const State &St) const {
    return St.checkCommittedAgreement();
  }

  std::string describe(const State &St) const { return St.dump(); }

  template <typename FnT> void forEachSuccessor(const State &St,
                                                FnT &&Fn) const {
    NodeSet Universe = St.universe();
    bool RoomToSend = St.pending().size() < Opts.MaxPending;
    for (NodeId Nid : Universe) {
      if (!St.universe().contains(Nid))
        continue;
      const bool Known = true;
      (void)Known;
      // elect
      if (RoomToSend && St.observedTime(Nid) < Opts.MaxTerm) {
        State Next = St;
        Next.elect(Nid);
        if (Next.fingerprint() != St.fingerprint())
          Fn(std::move(Next), "elect(" + std::to_string(Nid) + ")");
      }
      // invoke (constant method id: identity never affects guards)
      if (St.isLeader(Nid) && St.log(Nid).size() < Opts.MaxLog) {
        State Next = St;
        if (Next.invoke(Nid, 1))
          Fn(std::move(Next), "invoke(" + std::to_string(Nid) + ")");
      }
      // reconfig
      if (Opts.WithReconfig && St.isLeader(Nid) &&
          St.log(Nid).size() < Opts.MaxLog) {
        for (const Config &Ncf :
             Scheme->candidateReconfigs(St.currentConfig(Nid), Universe)) {
          State Next = St;
          if (Next.reconfig(Nid, Ncf))
            Fn(std::move(Next), "reconfig(" + std::to_string(Nid) + "," +
                                    Ncf.str() + ")");
        }
      }
      // commit broadcast
      if (RoomToSend && St.isLeader(Nid)) {
        State Next = St;
        if (Next.startCommit(Nid))
          Fn(std::move(Next), "commit(" + std::to_string(Nid) + ")");
      }
    }
    // deliveries (and optionally losses) of every pending message
    for (size_t I = 0; I != St.pending().size(); ++I) {
      {
        State Next = St;
        Next.deliver(I);
        Fn(std::move(Next), "deliver(" + St.pending()[I].str() + ")");
      }
      if (Opts.ExploreLoss) {
        State Next = St;
        size_t Count = 0;
        Next.dropPendingIf(
            [&](const raft::Msg &) { return Count++ == I; });
        Fn(std::move(Next), "lose(" + St.pending()[I].str() + ")");
      }
    }
  }

private:
  const ReconfigScheme *Scheme;
  Config InitialConf;
  RaftNetModelOptions Opts;
  raft::RaftOptions ProtoOpts;
};

} // namespace mc
} // namespace adore

#endif // ADORE_MC_RAFTNETMODEL_H
