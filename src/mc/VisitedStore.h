//===- mc/VisitedStore.h - Visited-set policies for the engine *- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The visited-set policy layer of mc::Engine. A store decides what
/// "already seen" means — by 64-bit fingerprint, by exact canonical
/// encoding, or by encoding with collision accounting — and owns the
/// parent links and action labels the engine walks to reconstruct
/// counterexample traces. Every store is sharded by the high bits of the
/// state fingerprint so the parallel engine can hand each shard to
/// exactly one worker per level phase:
///
///   - FingerprintStore  key = fingerprint. The fast path; sound iff the
///                       fingerprint is collision-free on the space.
///   - ExactStore        key = canonical encoding (requires the model's
///                       encode() hook). Sound regardless of fingerprint
///                       quality; no collision accounting.
///   - AuditStore        key = encoding, indexed by fingerprint. Sound,
///                       and every fingerprint hit is classified as a
///                       verified revisit or a collision, so a clean run
///                       additionally certifies the fingerprint-only
///                       results over the same space (audit layer).
///
/// Thread-safety contract (upheld by the engine's phase discipline, not
/// by locks): probe() may run concurrently with other probe() calls
/// only; insert() on a given shard is called by at most one thread at a
/// time, never concurrently with any probe(). Node numbering within a
/// shard follows insertion order, which the engine keeps identical
/// across thread counts — so traces are too.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_VISITEDSTORE_H
#define ADORE_MC_VISITEDSTORE_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace adore {
namespace mc {

/// Number of visited-set shards. A power of two; states map to shards by
/// the top bits of their fingerprint. Constant across thread counts so
/// that node numbering — and therefore every trace — is identical no
/// matter how many workers run.
inline constexpr size_t VisitedShards = 64;

inline size_t shardOfFingerprint(uint64_t Fp) {
  return static_cast<size_t>(Fp >> 58); // top 6 bits for 64 shards
}

/// A slot in a visited store: shard plus index within the shard's node
/// vector. Stable for the lifetime of the store.
struct NodeRef {
  uint32_t Shard = 0;
  uint32_t Index = 0;

  bool operator==(const NodeRef &O) const {
    return Shard == O.Shard && Index == O.Index;
  }
  bool operator!=(const NodeRef &O) const { return !(*this == O); }
};

/// Sentinel the engine passes as Parent when inserting an initial state:
/// the store rewrites it to the node's own ref (a root is its own
/// parent), which terminates trace walks.
inline constexpr NodeRef SelfParent{UINT32_MAX, UINT32_MAX};

/// What happened on an insert attempt.
struct VisitOutcome {
  /// The state had not been seen before (per the store's identity).
  bool IsNew = false;
  /// No previously seen state shared this fingerprint. For stores
  /// without fingerprint indexing this mirrors IsNew.
  bool NewFingerprint = false;
  /// The node slot assigned to the state; valid only when IsNew.
  NodeRef Ref;
};

/// Parent link + action label for one visited state.
struct VisitNode {
  NodeRef Parent;
  std::string Action;
};

/// Fingerprint-keyed visited set: the historical mc::explore semantics.
class FingerprintStore {
public:
  static constexpr bool NeedsEncoding = false;

  /// Read-only membership test (see the thread-safety contract).
  bool probe(uint64_t Fp, const std::string & /*Enc*/) const {
    const Shard &S = Shards[shardOfFingerprint(Fp)];
    return S.Map.find(Fp) != S.Map.end();
  }

  VisitOutcome insert(uint64_t Fp, std::string && /*Enc*/, NodeRef Parent,
                      std::string &&Action) {
    size_t Idx = shardOfFingerprint(Fp);
    Shard &S = Shards[Idx];
    auto [It, Inserted] =
        S.Map.emplace(Fp, static_cast<uint32_t>(S.Nodes.size()));
    if (!Inserted)
      return VisitOutcome{};
    NodeRef Ref{static_cast<uint32_t>(Idx),
                static_cast<uint32_t>(S.Nodes.size())};
    S.Nodes.push_back(
        VisitNode{Parent == SelfParent ? Ref : Parent, std::move(Action)});
    return VisitOutcome{true, true, Ref};
  }

  const VisitNode &node(NodeRef Ref) const {
    return Shards[Ref.Shard].Nodes[Ref.Index];
  }

private:
  struct Shard {
    std::unordered_map<uint64_t, uint32_t> Map;
    std::vector<VisitNode> Nodes;
  };
  std::array<Shard, VisitedShards> Shards;
};

/// Exact-encoding-keyed visited set: sound independent of fingerprint
/// quality. States still shard by fingerprint (equal encodings imply
/// equal states imply equal fingerprints, so the mapping is consistent).
class ExactStore {
public:
  static constexpr bool NeedsEncoding = true;

  bool probe(uint64_t Fp, const std::string &Enc) const {
    const Shard &S = Shards[shardOfFingerprint(Fp)];
    return S.Map.find(Enc) != S.Map.end();
  }

  VisitOutcome insert(uint64_t Fp, std::string &&Enc, NodeRef Parent,
                      std::string &&Action) {
    size_t Idx = shardOfFingerprint(Fp);
    Shard &S = Shards[Idx];
    auto [It, Inserted] =
        S.Map.emplace(std::move(Enc), static_cast<uint32_t>(S.Nodes.size()));
    if (!Inserted)
      return VisitOutcome{};
    NodeRef Ref{static_cast<uint32_t>(Idx),
                static_cast<uint32_t>(S.Nodes.size())};
    S.Nodes.push_back(
        VisitNode{Parent == SelfParent ? Ref : Parent, std::move(Action)});
    return VisitOutcome{true, true, Ref};
  }

  const VisitNode &node(NodeRef Ref) const {
    return Shards[Ref.Shard].Nodes[Ref.Index];
  }

private:
  struct Shard {
    std::unordered_map<std::string, uint32_t> Map;
    std::vector<VisitNode> Nodes;
  };
  std::array<Shard, VisitedShards> Shards;
};

/// Collision-auditing visited set: exact identity, fingerprint-indexed.
/// An insert whose NewFingerprint flag is false is a genuine collision —
/// a state a bare-fingerprint search would have wrongly pruned; the
/// engine tallies these into the audit statistics consumed by
/// audit::exploreAudited.
class AuditStore {
public:
  static constexpr bool NeedsEncoding = true;

  bool probe(uint64_t Fp, const std::string &Enc) const {
    const Shard &S = Shards[shardOfFingerprint(Fp)];
    auto It = S.ByFp.find(Fp);
    if (It == S.ByFp.end())
      return false;
    for (const auto &[SeenEnc, Slot] : It->second) {
      (void)Slot;
      if (SeenEnc == Enc)
        return true;
    }
    return false;
  }

  VisitOutcome insert(uint64_t Fp, std::string &&Enc, NodeRef Parent,
                      std::string &&Action) {
    size_t Idx = shardOfFingerprint(Fp);
    Shard &S = Shards[Idx];
    auto &Bucket = S.ByFp[Fp];
    for (const auto &[SeenEnc, Slot] : Bucket) {
      (void)Slot;
      if (SeenEnc == Enc)
        return VisitOutcome{};
    }
    bool FreshFp = Bucket.empty();
    NodeRef Ref{static_cast<uint32_t>(Idx),
                static_cast<uint32_t>(S.Nodes.size())};
    Bucket.emplace_back(std::move(Enc),
                        static_cast<uint32_t>(S.Nodes.size()));
    S.Nodes.push_back(
        VisitNode{Parent == SelfParent ? Ref : Parent, std::move(Action)});
    return VisitOutcome{true, FreshFp, Ref};
  }

  const VisitNode &node(NodeRef Ref) const {
    return Shards[Ref.Shard].Nodes[Ref.Index];
  }

private:
  struct Shard {
    std::unordered_map<uint64_t,
                       std::vector<std::pair<std::string, uint32_t>>>
        ByFp;
    std::vector<VisitNode> Nodes;
  };
  std::array<Shard, VisitedShards> Shards;
};

} // namespace mc
} // namespace adore

#endif // ADORE_MC_VISITEDSTORE_H
