//===- mc/Explorer.h - Generic explicit-state model checker ---*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small explicit-state model checker used as the executable stand-in
/// for the paper's Coq proofs: breadth-first exploration of a transition
/// system with 64-bit state fingerprinting, per-state invariant checks,
/// and counterexample reconstruction, plus a random-walk mode for depths
/// beyond exhaustive reach.
///
/// A Model type must provide:
///   using State = ...;                          // copyable
///   std::vector<State> initialStates();
///   template-visible member:
///     void forEachSuccessor(const State &, Fn); // Fn(State, std::string)
///   uint64_t fingerprint(const State &);
///   std::optional<std::string> invariant(const State &);
///   std::string describe(const State &);        // for counterexamples
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_EXPLORER_H
#define ADORE_MC_EXPLORER_H

#include "support/Rng.h"

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace adore {
namespace mc {

/// Exploration limits.
struct ExploreOptions {
  /// Stop expanding past this depth (number of transitions from an
  /// initial state). 0 means unbounded.
  size_t MaxDepth = 0;
  /// Abort exploration after this many distinct states. 0 = unbounded.
  size_t MaxStates = 0;
};

/// Exploration outcome.
struct ExploreResult {
  /// First invariant violation found, if any.
  std::optional<std::string> Violation;
  /// Action labels from an initial state to the violating state.
  std::vector<std::string> Trace;
  /// Rendering of the violating state.
  std::string ViolatingState;
  /// Distinct states visited (by fingerprint).
  size_t States = 0;
  /// Transitions generated (including duplicates).
  size_t Transitions = 0;
  /// Deepest level fully or partially expanded.
  size_t Depth = 0;
  /// True when MaxStates stopped the search before the frontier drained.
  bool Truncated = false;

  bool exhausted() const { return !Violation && !Truncated; }
  bool foundViolation() const { return Violation.has_value(); }
};

/// Breadth-first exhaustive exploration. \p OnViolation (optional)
/// receives the violating state itself, for rendering or dissection
/// beyond the textual describe().
template <typename ModelT, typename OnViolationT>
ExploreResult explore(ModelT &M, const ExploreOptions &Opts,
                      OnViolationT &&OnViolation) {
  using State = typename ModelT::State;

  struct Visit {
    uint64_t ParentFp;
    std::string Action;
  };

  ExploreResult Res;
  std::unordered_map<uint64_t, Visit> Visited;
  std::deque<std::pair<State, size_t>> Frontier;

  auto ReportViolation = [&](const State &S, uint64_t Fp,
                             std::string Message) {
    OnViolation(S);
    Res.Violation = std::move(Message);
    Res.ViolatingState = M.describe(S);
    // Walk the parent map back to an initial state (parent fp of an
    // initial state is its own fp).
    std::vector<std::string> Rev;
    uint64_t Cur = Fp;
    for (;;) {
      auto It = Visited.find(Cur);
      if (It == Visited.end() || It->second.ParentFp == Cur)
        break;
      Rev.push_back(It->second.Action);
      Cur = It->second.ParentFp;
    }
    Res.Trace.assign(Rev.rbegin(), Rev.rend());
  };

  for (State &Init : M.initialStates()) {
    uint64_t Fp = M.fingerprint(Init);
    if (!Visited.emplace(Fp, Visit{Fp, ""}).second)
      continue;
    ++Res.States;
    if (auto V = M.invariant(Init)) {
      ReportViolation(Init, Fp, std::move(*V));
      return Res;
    }
    Frontier.emplace_back(std::move(Init), 0);
  }

  while (!Frontier.empty()) {
    auto [S, Depth] = std::move(Frontier.front());
    Frontier.pop_front();
    Res.Depth = std::max(Res.Depth, Depth);
    if (Opts.MaxDepth && Depth >= Opts.MaxDepth)
      continue;
    uint64_t ParentFp = M.fingerprint(S);
    bool Stop = false;
    M.forEachSuccessor(S, [&](State Next, std::string Action) {
      if (Stop)
        return;
      ++Res.Transitions;
      uint64_t Fp = M.fingerprint(Next);
      if (!Visited.emplace(Fp, Visit{ParentFp, std::move(Action)}).second)
        return;
      ++Res.States;
      if (auto V = M.invariant(Next)) {
        ReportViolation(Next, Fp, std::move(*V));
        Stop = true;
        return;
      }
      if (Opts.MaxStates && Res.States >= Opts.MaxStates) {
        Res.Truncated = true;
        Stop = true;
        return;
      }
      Frontier.emplace_back(std::move(Next), Depth + 1);
    });
    if (Stop)
      break;
  }
  if (Res.Violation)
    Res.Truncated = false;
  return Res;
}

/// Convenience overload without a violation hook.
template <typename ModelT>
ExploreResult explore(ModelT &M, const ExploreOptions &Opts = {}) {
  return explore(M, Opts, [](const typename ModelT::State &) {});
}

/// Random-walk exploration: \p Walks runs of at most \p WalkDepth steps,
/// checking the invariant after every transition. Finds deep violations
/// that exhaustive search cannot reach; proves nothing when it passes.
template <typename ModelT>
ExploreResult randomWalks(ModelT &M, size_t Walks, size_t WalkDepth,
                          uint64_t Seed) {
  using State = typename ModelT::State;
  ExploreResult Res;
  Rng R(Seed);
  std::vector<State> Inits = M.initialStates();
  if (Inits.empty())
    return Res;

  for (size_t W = 0; W != Walks && !Res.Violation; ++W) {
    State Cur = Inits[R.nextBelow(Inits.size())];
    // A violating initial state must fail the run too, with an empty
    // trace — not only states reached after at least one transition.
    if (auto V = M.invariant(Cur)) {
      Res.Violation = std::move(*V);
      Res.ViolatingState = M.describe(Cur);
      Res.Trace.clear();
      break;
    }
    std::vector<std::string> Trace;
    for (size_t D = 0; D != WalkDepth; ++D) {
      std::vector<std::pair<State, std::string>> Succs;
      M.forEachSuccessor(Cur, [&](State Next, std::string Action) {
        Succs.emplace_back(std::move(Next), std::move(Action));
      });
      Res.Transitions += Succs.size();
      if (Succs.empty())
        break;
      auto &[Next, Action] = Succs[R.nextBelow(Succs.size())];
      Trace.push_back(Action);
      Cur = std::move(Next);
      ++Res.States;
      Res.Depth = std::max(Res.Depth, D + 1);
      if (auto V = M.invariant(Cur)) {
        Res.Violation = std::move(*V);
        Res.ViolatingState = M.describe(Cur);
        Res.Trace = std::move(Trace);
        break;
      }
    }
  }
  return Res;
}

} // namespace mc
} // namespace adore

#endif // ADORE_MC_EXPLORER_H
