//===- mc/Explorer.h - Classic entry points to the engine -----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The historical model-checker entry points, now thin instantiations of
/// mc::Engine (Engine.h): breadth-first exhaustive exploration with a
/// fingerprint-keyed visited set, and a random-walk mode for depths
/// beyond exhaustive reach. Semantics are unchanged; exploration gains
/// the engine's parallel mode (ExploreOptions::Threads / the
/// ADORE_MC_THREADS environment variable) with thread-count-independent
/// results.
///
/// A Model type must provide:
///   using State = ...;                          // copyable
///   std::vector<State> initialStates();
///   template-visible member:
///     void forEachSuccessor(const State &, Fn); // Fn(State, std::string)
///   uint64_t fingerprint(const State &);
///   std::optional<std::string> invariant(const State &);
///   std::string describe(const State &);        // for counterexamples
/// and, for the exact/audit store policies only:
///   std::string encode(const State &);          // canonical, injective
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_EXPLORER_H
#define ADORE_MC_EXPLORER_H

#include "mc/Engine.h"
#include "support/Rng.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace adore {
namespace mc {

/// Breadth-first exhaustive exploration with fingerprint-keyed
/// deduplication. \p OnViolation (optional) receives the violating state
/// itself, for rendering or dissection beyond the textual describe().
template <typename ModelT, typename OnViolationT>
ExploreResult explore(ModelT &M, const ExploreOptions &Opts,
                      OnViolationT &&OnViolation) {
  Engine<ModelT, FingerprintStore> E(M, Opts);
  return E.run(std::forward<OnViolationT>(OnViolation));
}

/// Convenience overload without a violation hook.
template <typename ModelT>
ExploreResult explore(ModelT &M, const ExploreOptions &Opts = {}) {
  return explore(M, Opts, [](const typename ModelT::State &) {});
}

/// Random-walk exploration: \p Walks runs of at most \p WalkDepth steps,
/// checking the invariant after every transition. Finds deep violations
/// that exhaustive search cannot reach; proves nothing when it passes.
///
/// Successor choice is a single-pass size-1 reservoir over
/// forEachSuccessor: the K-th successor replaces the current pick with
/// probability 1/K, which is uniform once enumeration finishes and never
/// materializes the full successor vector. Walks are deterministic in
/// the seed (see the regression test pinning exact traces).
template <typename ModelT>
ExploreResult randomWalks(ModelT &M, size_t Walks, size_t WalkDepth,
                          uint64_t Seed) {
  using State = typename ModelT::State;
  ExploreResult Res;
  Rng R(Seed);
  std::vector<State> Inits = M.initialStates();
  if (Inits.empty())
    return Res;

  for (size_t W = 0; W != Walks && !Res.Violation; ++W) {
    State Cur = Inits[R.nextBelow(Inits.size())];
    // A violating initial state must fail the run too, with an empty
    // trace — not only states reached after at least one transition.
    if (auto V = M.invariant(Cur)) {
      Res.Violation = std::move(*V);
      Res.ViolatingState = M.describe(Cur);
      Res.Trace.clear();
      break;
    }
    std::vector<std::string> Trace;
    for (size_t D = 0; D != WalkDepth; ++D) {
      std::optional<State> Chosen;
      std::string ChosenAction;
      size_t Count = 0;
      M.forEachSuccessor(Cur, [&](State Next, std::string Action) {
        ++Count;
        if (R.nextBelow(Count) == 0) {
          Chosen = std::move(Next);
          ChosenAction = std::move(Action);
        }
      });
      Res.Transitions += Count;
      if (!Chosen)
        break;
      Trace.push_back(std::move(ChosenAction));
      Cur = std::move(*Chosen);
      ++Res.States;
      Res.Depth = std::max(Res.Depth, D + 1);
      if (auto V = M.invariant(Cur)) {
        Res.Violation = std::move(*V);
        Res.ViolatingState = M.describe(Cur);
        Res.Trace = std::move(Trace);
        break;
      }
    }
  }
  return Res;
}

} // namespace mc
} // namespace adore

#endif // ADORE_MC_EXPLORER_H
