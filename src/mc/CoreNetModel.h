//===- mc/CoreNetModel.h - The production core as a model -----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-checks the *production* protocol implementation: a state is a
/// vector of core::RaftCore values (the exact translation unit the sim
/// and rt runtimes execute) plus the in-flight message multiset and the
/// armed-timer bits, and a transition is one timer firing, one client or
/// admin input, or one message delivery. Where mc/RaftNetModel.h
/// explores the network-level *specification*, this model closes the
/// last gap in the story: the code the chaos suite bombards is the code
/// the checker exhaustively explores on small clusters.
///
/// Time is abstracted to the two instants the protocol can distinguish:
/// "a live leader was heard from recently" (NowRecent, inside the Raft
/// §4.2.3 vote-stickiness window) and "leader contact has expired"
/// (NowExpired). Every RequestVote whose outcome depends on the window
/// is delivered both ways, so the checker covers the disruptive-server
/// regression states of §4.2.3 — including, with
/// CoreOptions::DisableVoteStickiness set, the buggy behaviours the
/// guard exists to forbid.
///
/// Timer delays and the core's Rng are abstracted entirely (an armed
/// timer may fire whenever armed), matching their exclusion from
/// RaftCore::addToSink.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_CORENETMODEL_H
#define ADORE_MC_CORENETMODEL_H

#include "core/RaftCore.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace adore {
namespace mc {

/// Bounds for production-core exploration.
struct CoreNetModelOptions {
  /// Cap on any replica's term (elections stop past it).
  Time MaxTerm = 2;
  /// Cap on client/admin appends per log (leader no-ops ride on top, so
  /// logs stay bounded by MaxLog + MaxTerm).
  size_t MaxLog = 2;
  /// Cap on in-flight messages; effects past it are dropped, which is
  /// ordinary message loss, so the reachable set stays sound for safety.
  size_t MaxPending = 6;
  /// Allow reconfig transitions.
  bool WithReconfig = true;
  /// Explore crash/restart of single replicas.
  bool ExploreCrash = false;
  /// Give every replica its own drifting clock: NowUs observations use
  /// the per-node clock, and a tick transition advances one node's
  /// clock by ClockQuantumUs — the adversary schedules drift, subject
  /// only to the pairwise skew bound below. Off: the legacy two-instant
  /// time abstraction (and its stickiness dual-delivery) is used.
  bool WithClocks = false;
  /// Max |clock_i - clock_j| the tick adversary may create. To model a
  /// deployment that KEEPS its CoreOptions::MaxDriftPpm promise over
  /// the explored horizon, pick EffectiveLease + 2*Bound <=
  /// ElectionTimeoutMinUs; to model one that breaks it, pick a larger
  /// bound than declared and watch the lease invariants fire.
  uint64_t ClockSkewBoundUs = 1000;
  /// Clocks start at one quantum (0 would collide with the core's
  /// "never contacted" sentinel) and never tick past this, which keeps
  /// the reachable set finite and eventually starves lease renewal.
  uint64_t MaxClockUs = 6000;
  uint64_t ClockQuantumUs = 1000;
  /// Total linearizable-read submissions to explore (0 = none). Each
  /// read records the maximum commit index across live replicas at
  /// submission; a ReadReady below that is a stale read.
  uint64_t MaxReads = 0;
  /// Start the exploration from a converged prefix instead of cold
  /// boot: the first member is driven to leadership deterministically
  /// (election timer plus a synchronous-network drain), then through
  /// one heartbeat round, which replicates the term-start no-op and —
  /// with leases enabled — leaves it holding a fresh quorum-granted
  /// lease. Every step taken is an ordinary model transition on one
  /// fixed schedule, so the constructed state is reachable; the depth
  /// budget is just spent on the interesting suffix (a rival election
  /// under clock drift, say) instead of the boring election prefix.
  bool StartEstablished = false;
};

/// The production-core transition system.
class CoreNetModel {
public:
  struct State {
    std::vector<core::RaftCore> Cores;
    /// Armed-timer bits per core, maintained from SetTimer/CancelTimer
    /// effects (indexes parallel to Cores).
    std::vector<uint8_t> ElectionArmed;
    std::vector<uint8_t> HeartbeatArmed;
    /// In-flight messages. Order is immaterial (any may deliver next);
    /// the encoding canonicalizes it as a multiset.
    std::vector<core::Msg> Pending;
    /// Per-node clocks (WithClocks only; empty otherwise).
    std::vector<uint64_t> ClockUs;
    /// Reads submitted but not yet resolved (MaxReads only). MinCommit
    /// is the linearizability floor captured at submission.
    struct PendingRead {
      uint32_t Node = 0; ///< Index into Cores of the submission target.
      uint64_t ReadId = 0;
      uint64_t MinCommit = 0;
    };
    std::vector<PendingRead> PendingReads;
    uint64_t NextReadId = 0;
    /// First stale read observed while folding effects, if any; the
    /// invariant surfaces it.
    std::string ReadViolation;
  };

  CoreNetModel(const ReconfigScheme &Scheme, Config InitialConf,
               CoreNetModelOptions Opts = {},
               core::CoreOptions CoreOpts = {})
      : Scheme(&Scheme), InitialConf(std::move(InitialConf)), Opts(Opts),
        CoreOpts(CoreOpts) {}

  std::vector<State> initialStates() const {
    State St;
    for (NodeId Id : Scheme->mbrs(InitialConf)) {
      // The seed is arbitrary: the Rng only perturbs timer delays,
      // which this model abstracts over.
      St.Cores.emplace_back(Id, *Scheme, InitialConf, CoreOpts,
                            /*Seed=*/Id);
      St.ElectionArmed.push_back(0);
      St.HeartbeatArmed.push_back(0);
    }
    if (Opts.WithClocks)
      // One quantum, not zero: a contact stamped at clock 0 would
      // collide with LastLeaderContactUs's never-contacted sentinel.
      St.ClockUs.assign(St.Cores.size(), Opts.ClockQuantumUs);
    for (size_t I = 0; I != St.Cores.size(); ++I)
      absorb(St, I, St.Cores[I].start());
    if (Opts.StartEstablished)
      establish(St);
    return {std::move(St)};
  }

  uint64_t fingerprint(const State &St) const {
    Fnv1aHasher H;
    addToSink(H, St);
    return H.finish();
  }

  std::string encode(const State &St) const {
    StateEncoder E;
    addToSink(E, St);
    return E.take();
  }

  bool equal(const State &A, const State &B) const {
    return encode(A) == encode(B);
  }

  std::optional<std::string> invariant(const State &St) const {
    // A stale read is recorded the moment its ReadReady folds in.
    if (!St.ReadViolation.empty())
      return St.ReadViolation;
    // Election safety, state-based: a deposed leader always observes a
    // higher term first, so two same-term leaders would coexist in some
    // reachable state.
    for (size_t A = 0; A != St.Cores.size(); ++A)
      for (size_t B = A + 1; B != St.Cores.size(); ++B) {
        const core::RaftCore &CA = St.Cores[A];
        const core::RaftCore &CB = St.Cores[B];
        if (CA.isLeader() && CB.isLeader() && CA.term() == CB.term() &&
            !CA.isCrashed() && !CB.isCrashed())
          return "election safety violated: nodes " +
                 std::to_string(CA.id()) + " and " + std::to_string(CB.id()) +
                 " both lead term " + std::to_string(CA.term());
        // Single live lease: each holder judges liveness on its OWN
        // clock — that is exactly the overlap drift could create.
        if (leaseLiveHere(St, A) && leaseLiveHere(St, B))
          return "two live leases: nodes " + std::to_string(CA.id()) +
                 " (term " + std::to_string(CA.leaseTerm()) + ") and " +
                 std::to_string(CB.id()) + " (term " +
                 std::to_string(CB.leaseTerm()) + ")";
        if (auto V = checkLogMatching(CA, CB))
          return V;
        if (auto V = checkCommittedAgreement(CA, CB))
          return V;
      }
    for (const core::RaftCore &C : St.Cores) {
      if (auto V = checkReconfigSpacing(C))
        return V;
      if (auto V = checkReconfigTermPrecedence(C))
        return V;
      if (auto V = checkSuspicionSanity(C))
        return V;
      if (auto V = checkLeaseSanity(C))
        return V;
    }
    return std::nullopt;
  }

  std::string describe(const State &St) const {
    std::ostringstream OS;
    for (size_t I = 0; I != St.Cores.size(); ++I) {
      OS << St.Cores[I].describe()
         << (St.ElectionArmed[I] ? " [E]" : "")
         << (St.HeartbeatArmed[I] ? " [H]" : "");
      if (Opts.WithClocks)
        OS << " clk=" << St.ClockUs[I];
      OS << "\n";
    }
    if (!St.PendingReads.empty())
      OS << "reads-in-flight: " << St.PendingReads.size() << "\n";
    OS << "pending(" << St.Pending.size() << "):";
    for (const core::Msg &M : St.Pending)
      OS << " " << M.str();
    return OS.str();
  }

  template <typename FnT>
  void forEachSuccessor(const State &St, FnT &&Fn) const {
    bool RoomToSend = St.Pending.size() < Opts.MaxPending;
    NodeSet Universe = Scheme->mbrs(InitialConf);

    for (size_t I = 0; I != St.Cores.size(); ++I) {
      const core::RaftCore &C = St.Cores[I];
      std::string Nid = std::to_string(C.id());
      // Election timeout fires (an armed timer may fire at any moment).
      if (St.ElectionArmed[I] && !C.isCrashed() && C.term() < Opts.MaxTerm &&
          RoomToSend) {
        State Next = St;
        Next.ElectionArmed[I] = 0;
        absorb(Next, I,
               Next.Cores[I].onTimer(core::TimerId::Election,
                                     C.electionGen(), nowFor(St, I)));
        Fn(std::move(Next), "electionTimeout(" + Nid + ")");
      }
      // Heartbeat fires.
      if (St.HeartbeatArmed[I] && !C.isCrashed() && C.isLeader() &&
          RoomToSend) {
        State Next = St;
        Next.HeartbeatArmed[I] = 0;
        absorb(Next, I,
               Next.Cores[I].onTimer(core::TimerId::Heartbeat,
                                     C.heartbeatGen(), nowFor(St, I)));
        Fn(std::move(Next), "heartbeat(" + Nid + ")");
      }
      // One node's clock ticks: the adversary drifts clocks apart in
      // quantum steps, constrained only by the pairwise skew bound and
      // the horizon.
      if (Opts.WithClocks && canTick(St, I)) {
        State Next = St;
        Next.ClockUs[I] += Opts.ClockQuantumUs;
        Fn(std::move(Next), "tick(" + Nid + ")");
      }
      // Linearizable read submission. The floor is the max commit
      // index across replicas NOW: everything committed anywhere
      // before the read was invoked must be visible to it.
      if (Opts.MaxReads != 0 && St.NextReadId < Opts.MaxReads &&
          !C.isCrashed() && RoomToSend) {
        State Next = St;
        State::PendingRead PR;
        PR.Node = static_cast<uint32_t>(I);
        PR.ReadId = ++Next.NextReadId;
        for (const core::RaftCore &Peer : St.Cores)
          PR.MinCommit = std::max(PR.MinCommit,
                                  static_cast<uint64_t>(Peer.commitIndex()));
        // Registered before absorb: a lease-holding leader answers
        // synchronously and the fold must find the pending record.
        Next.PendingReads.push_back(PR);
        core::Effects Effs;
        Next.Cores[I].readQuery(PR.ReadId, nowFor(St, I), Effs);
        absorb(Next, I, std::move(Effs));
        Fn(std::move(Next), "read(" + Nid + ")");
      }
      // Client command (constant identity: it never affects guards).
      if (C.isLeader() && !C.isCrashed() &&
          appendedEntries(C) < Opts.MaxLog) {
        State Next = St;
        core::Effects Effs;
        if (Next.Cores[I].submit(/*Method=*/1, /*ClientSeq=*/0, Effs)) {
          absorb(Next, I, std::move(Effs));
          Fn(std::move(Next), "submit(" + Nid + ")");
        }
      }
      // Admin reconfig.
      if (Opts.WithReconfig && C.isLeader() && !C.isCrashed() &&
          appendedEntries(C) < Opts.MaxLog) {
        for (const Config &Ncf :
             Scheme->candidateReconfigs(C.config(), Universe)) {
          State Next = St;
          core::Effects Effs;
          if (Next.Cores[I].requestReconfig(Ncf, Effs)) {
            absorb(Next, I, std::move(Effs));
            Fn(std::move(Next), "reconfig(" + Nid + "," + Ncf.str() + ")");
          }
        }
      }
      // Crash / restart.
      if (Opts.ExploreCrash) {
        State Next = St;
        if (C.isCrashed()) {
          absorb(Next, I, Next.Cores[I].restart());
          Fn(std::move(Next), "restart(" + Nid + ")");
        } else {
          absorb(Next, I, Next.Cores[I].crash());
          // crash() cancels both timers through effects; mirror that
          // even if the effect list is ever trimmed.
          Next.ElectionArmed[I] = 0;
          Next.HeartbeatArmed[I] = 0;
          Fn(std::move(Next), "crash(" + Nid + ")");
        }
      }
    }

    // Deliveries. Every pending message may arrive next; a RequestVote
    // whose fate hinges on the §4.2.3 stickiness window arrives both
    // inside it (refused) and after it expired (considered). With real
    // per-node clocks the window's passage is explored by tick
    // transitions instead, so the dual delivery is redundant there.
    for (size_t MI = 0; MI != St.Pending.size(); ++MI) {
      const core::Msg &M = St.Pending[MI];
      size_t RI = indexOf(St, M.To);
      if (RI == St.Cores.size())
        continue; // Addressee outside the model: undeliverable.
      deliver(St, MI, RI, nowFor(St, RI), "deliver", Fn);
      if (!Opts.WithClocks && stickinessSensitive(St.Cores[RI], M))
        deliver(St, MI, RI, NowExpired(), "deliverLate", Fn);
    }
  }

private:
  /// The instant inside the vote-stickiness window of a leader heard
  /// from at NowRecent (LastLeaderContactUs is only ever 0 or this).
  uint64_t NowRecent() const { return 1; }
  /// The first instant past that window.
  uint64_t NowExpired() const {
    return NowRecent() + CoreOpts.ElectionTimeoutMinUs;
  }
  /// What node \p I's protocol clock reads in \p St.
  uint64_t nowFor(const State &St, size_t I) const {
    return Opts.WithClocks ? St.ClockUs[I] : NowRecent();
  }
  /// May node \p I's clock advance one quantum without leaving the
  /// horizon or stretching any pairwise skew past the bound? (Only the
  /// growing side can break the bound.)
  bool canTick(const State &St, size_t I) const {
    uint64_t Next = St.ClockUs[I] + Opts.ClockQuantumUs;
    if (Next > Opts.MaxClockUs)
      return false;
    for (uint64_t Other : St.ClockUs)
      if (Next > Other + Opts.ClockSkewBoundUs)
        return false;
    return true;
  }
  /// Is node \p I's lease live, judged on its own clock — the only
  /// clock the node itself can consult before serving a read?
  bool leaseLiveHere(const State &St, size_t I) const {
    return St.Cores[I].leaseLiveAt(nowFor(St, I));
  }

  /// Client/admin appends in \p C's log (leader no-ops excluded), the
  /// quantity MaxLog bounds.
  static size_t appendedEntries(const core::RaftCore &C) {
    size_t N = 0;
    for (const core::LogEntry &E : C.log())
      if (E.Kind == raft::EntryKind::Reconfig || E.Method != 0)
        ++N;
    return N;
  }

  size_t indexOf(const State &St, NodeId Id) const {
    for (size_t I = 0; I != St.Cores.size(); ++I)
      if (St.Cores[I].id() == Id)
        return I;
    return St.Cores.size();
  }

  /// True when delivering \p M to \p C now vs. after the stickiness
  /// window could differ: only RequestVotes that the window would refuse.
  bool stickinessSensitive(const core::RaftCore &C,
                           const core::Msg &M) const {
    return M.K == core::Msg::Kind::RequestVote && !M.TransferElection &&
           !CoreOpts.DisableVoteStickiness && !C.isCrashed() &&
           !C.isLeader() && C.leaderHint().has_value();
  }

  template <typename FnT>
  void deliver(const State &St, size_t MsgIdx, size_t CoreIdx,
               uint64_t NowUs, const char *Verb, FnT &&Fn) const {
    State Next = St;
    core::Msg M = std::move(Next.Pending[MsgIdx]);
    Next.Pending.erase(Next.Pending.begin() +
                       static_cast<ptrdiff_t>(MsgIdx));
    absorb(Next, CoreIdx, Next.Cores[CoreIdx].onMessage(M, NowUs));
    Fn(std::move(Next), std::string(Verb) + "(" + M.str() + ")");
  }

  /// Initial-state construction only: deliver every pending message in
  /// FIFO order until the network is quiet — one fixed schedule of
  /// ordinary deliver transitions (a synchronous network).
  void drainPending(State &St) const {
    while (!St.Pending.empty()) {
      core::Msg M = std::move(St.Pending.front());
      St.Pending.erase(St.Pending.begin());
      size_t RI = indexOf(St, M.To);
      if (RI == St.Cores.size())
        continue;
      absorb(St, RI, St.Cores[RI].onMessage(M, nowFor(St, RI)));
    }
  }

  /// StartEstablished: elect the first member and run one heartbeat
  /// round on a synchronous network (see the option's comment).
  void establish(State &St) const {
    if (St.ElectionArmed[0]) {
      St.ElectionArmed[0] = 0;
      absorb(St, 0,
             St.Cores[0].onTimer(core::TimerId::Election,
                                 St.Cores[0].electionGen(), nowFor(St, 0)));
      drainPending(St);
    }
    // The heartbeat replicates the term-start no-op (committing it on
    // the next exchange) and, with leases enabled, opens the
    // confirmation round whose acks grant the leader its lease.
    if (St.Cores[0].isLeader() && St.HeartbeatArmed[0]) {
      St.HeartbeatArmed[0] = 0;
      absorb(St, 0,
             St.Cores[0].onTimer(core::TimerId::Heartbeat,
                                 St.Cores[0].heartbeatGen(),
                                 nowFor(St, 0)));
      drainPending(St);
    }
  }

  /// Folds a core's effect list into the model state: sends join the
  /// network (dropped as loss when full), timer effects maintain the
  /// armed bits, everything else is host-side and invisible here.
  void absorb(State &St, size_t I, core::Effects Effs) const {
    for (core::Effect &E : Effs) {
      switch (E.K) {
      case core::Effect::Kind::Send:
        if (St.Pending.size() < Opts.MaxPending)
          St.Pending.push_back(std::move(E.M));
        break;
      case core::Effect::Kind::SetTimer:
        (E.Timer == core::TimerId::Election ? St.ElectionArmed
                                            : St.HeartbeatArmed)[I] = 1;
        break;
      case core::Effect::Kind::CancelTimer:
        (E.Timer == core::TimerId::Election ? St.ElectionArmed
                                            : St.HeartbeatArmed)[I] = 0;
        break;
      case core::Effect::Kind::ReadReady:
      case core::Effect::Kind::ReadFailed: {
        // Resolve the pending read this effect answers. A ReadReady
        // below the linearizability floor captured at submission IS
        // the stale read the lease/ReadIndex machinery must prevent.
        auto It = std::find_if(St.PendingReads.begin(),
                               St.PendingReads.end(),
                               [&](const State::PendingRead &PR) {
                                 return PR.Node == I &&
                                        PR.ReadId == E.ReadId;
                               });
        if (It == St.PendingReads.end())
          break; // E.g. dropped by a crash; nothing to resolve.
        if (E.K == core::Effect::Kind::ReadReady &&
            static_cast<uint64_t>(E.Index) < It->MinCommit &&
            St.ReadViolation.empty())
          St.ReadViolation =
              "stale read: node " + std::to_string(St.Cores[I].id()) +
              " served read " + std::to_string(E.ReadId) + " at index " +
              std::to_string(E.Index) + " < committed floor " +
              std::to_string(It->MinCommit);
        St.PendingReads.erase(It);
        break;
      }
      case core::Effect::Kind::Apply:
      case core::Effect::Kind::CommitAdvanced:
      case core::Effect::Kind::Persist:
      case core::Effect::Kind::LeaderElected:
      // Suspicion transitions are host-side notifications (the heal
      // driver's input); the *state* behind them lives in the core and
      // is fingerprinted there, so the model checker explores every
      // suspect/recover interleaving without extra bookkeeping here.
      case core::Effect::Kind::ReplicaSuspected:
      case core::Effect::Kind::ReplicaRecovered:
        break;
      }
    }
  }

  template <typename SinkT>
  static void addMsgToSink(SinkT &S, const core::Msg &M) {
    S.addByte(static_cast<uint8_t>(M.K));
    S.addU32(M.From);
    S.addU32(M.To);
    S.addU64(M.Term);
    S.addU64(M.LastLogTerm);
    S.addU64(M.LastLogIndex);
    S.addBool(M.TransferElection);
    S.addBool(M.Granted);
    S.addU64(M.PrevIndex);
    S.addU64(M.PrevTerm);
    S.addU64(M.LeaderCommit);
    S.addBool(M.Success);
    S.addU64(M.MatchIndex);
    S.addU64(M.SnapIndex);
    S.addU64(M.SnapTerm);
    S.addU64(M.Offset);
    S.addBool(M.Done);
    S.addString(M.Chunk);
    S.addU64(M.ReadRound);
    S.addU64(M.Entries.size());
    for (const core::LogEntry &E : M.Entries) {
      S.addU64(E.Term);
      S.addByte(static_cast<uint8_t>(E.Kind));
      S.addU64(E.Method);
      E.Conf.addToSink(S);
      S.addU64(E.ClientSeq);
    }
  }

  template <typename SinkT>
  void addToSink(SinkT &S, const State &St) const {
    S.addU64(St.Cores.size());
    for (size_t I = 0; I != St.Cores.size(); ++I) {
      St.Cores[I].addToSink(S);
      S.addBool(St.ElectionArmed[I] != 0);
      S.addBool(St.HeartbeatArmed[I] != 0);
    }
    // Model-level read/clock bookkeeping, gated on the options that
    // introduce it so legacy explorations encode byte-identically.
    if (Opts.WithClocks)
      for (uint64_t Clock : St.ClockUs)
        S.addU64(Clock);
    if (Opts.MaxReads != 0) {
      S.addU64(St.NextReadId);
      S.addU64(St.PendingReads.size());
      for (const State::PendingRead &PR : St.PendingReads) {
        S.addU32(PR.Node);
        S.addU64(PR.ReadId);
        S.addU64(PR.MinCommit);
      }
      S.addString(St.ReadViolation);
    }
    // The network is a multiset: sort per-message digests so states
    // differing only in arrival order coincide.
    S.addU64(St.Pending.size());
    std::vector<decltype(sinkSubResult(S))> Subs;
    Subs.reserve(St.Pending.size());
    for (const core::Msg &M : St.Pending) {
      SinkT Sub;
      addMsgToSink(Sub, M);
      Subs.push_back(sinkSubResult(Sub));
    }
    std::sort(Subs.begin(), Subs.end());
    for (const auto &Sub : Subs)
      addSubResult(S, Sub);
  }

  /// Raft log matching, pairwise: same term at one index implies equal
  /// prefixes up to it. Scan from the highest shared index downward.
  static std::optional<std::string>
  checkLogMatching(const core::RaftCore &A, const core::RaftCore &B) {
    size_t Common = std::min(A.logSize(), B.logSize());
    for (size_t I = Common; I > 0; --I) {
      if (A.entry(I).Term != B.entry(I).Term)
        continue;
      for (size_t J = 1; J <= I; ++J)
        if (A.entry(J) != B.entry(J))
          return "log matching violated: nodes " + std::to_string(A.id()) +
                 " and " + std::to_string(B.id()) + " agree at index " +
                 std::to_string(I) + " but differ at " + std::to_string(J);
      return std::nullopt; // Prefixes equal; lower indexes all match.
    }
    return std::nullopt;
  }

  /// Committed entries must agree across replicas.
  static std::optional<std::string>
  checkCommittedAgreement(const core::RaftCore &A, const core::RaftCore &B) {
    size_t Common = std::min(A.commitIndex(), B.commitIndex());
    for (size_t I = 1; I <= Common; ++I)
      if (A.entry(I) != B.entry(I))
        return "committed logs disagree: nodes " + std::to_string(A.id()) +
               " and " + std::to_string(B.id()) + " at index " +
               std::to_string(I);
    return std::nullopt;
  }

  /// R2-derived: a leader never starts a reconfiguration while another
  /// is uncommitted, so no log ever holds two uncommitted reconfigs.
  static std::optional<std::string>
  checkReconfigSpacing(const core::RaftCore &C) {
    size_t Uncommitted = 0;
    for (size_t I = C.commitIndex() + 1; I <= C.logSize(); ++I)
      if (C.entry(I).Kind == raft::EntryKind::Reconfig)
        ++Uncommitted;
    if (Uncommitted > 1)
      return "R2 violated: node " + std::to_string(C.id()) + " holds " +
             std::to_string(Uncommitted) + " uncommitted reconfigs";
    return std::nullopt;
  }

  /// R3-derived: a leader commits an entry of its own term (its no-op)
  /// before reconfiguring, so every reconfig entry of term t is
  /// preceded in its log by another entry of term t.
  static std::optional<std::string>
  checkReconfigTermPrecedence(const core::RaftCore &C) {
    for (size_t I = 1; I <= C.logSize(); ++I) {
      if (C.entry(I).Kind != raft::EntryKind::Reconfig)
        continue;
      bool Preceded = false;
      for (size_t J = 1; J != I; ++J)
        if (C.entry(J).Term == C.entry(I).Term) {
          Preceded = true;
          break;
        }
      if (!Preceded)
        return "R3 violated: node " + std::to_string(C.id()) +
               " holds a term-" + std::to_string(C.entry(I).Term) +
               " reconfig at index " + std::to_string(I) +
               " with no prior entry of that term";
    }
    return std::nullopt;
  }

  /// Healing sanity: suspicion is leader-local soft state. A non-leader
  /// holding suspicions, or a suspicion of a non-member, would let the
  /// heal driver act on observations nobody is maintaining — both must
  /// be unreachable (the core clears the set on every leadership exit
  /// and prunes it against the new config the moment a reconfig entry
  /// is appended, as well as each heartbeat round).
  std::optional<std::string>
  checkSuspicionSanity(const core::RaftCore &C) const {
    if (C.suspected().empty())
      return std::nullopt;
    if (!C.isLeader() || C.isCrashed())
      return "suspicion outside leadership: node " + std::to_string(C.id()) +
             " holds suspicions but is not an active leader";
    if (!C.suspected().isSubsetOf(Scheme->mbrs(C.config())))
      return "node " + std::to_string(C.id()) +
             " suspects a non-member of its own configuration";
    return std::nullopt;
  }

  /// Lease structural invariants, liveness aside: (a) lease⊆term — a
  /// lease only ever belongs to the current term's active leader (the
  /// core clears it on every leadership or term exit); (b) lease dies
  /// at reconfig-append — no lease may coexist with an uncommitted
  /// reconfig entry, because the new config could elect a leader whose
  /// voters never promised the lease holder anything.
  static std::optional<std::string>
  checkLeaseSanity(const core::RaftCore &C) {
    if (C.leaseUntilUs() == 0)
      return std::nullopt;
    if (!C.isLeader() || C.isCrashed() || C.leaseTerm() != C.term())
      return "lease outside leadership: node " + std::to_string(C.id()) +
             " holds a term-" + std::to_string(C.leaseTerm()) +
             " lease but is not the active term-" +
             std::to_string(C.term()) + " leader";
    for (size_t I = C.commitIndex() + 1; I <= C.logSize(); ++I)
      if (C.entry(I).Kind == raft::EntryKind::Reconfig)
        return "lease survived reconfig-append: node " +
               std::to_string(C.id()) +
               " holds a lease with an uncommitted reconfig at index " +
               std::to_string(I);
    return std::nullopt;
  }

  const ReconfigScheme *Scheme;
  Config InitialConf;
  CoreNetModelOptions Opts;
  core::CoreOptions CoreOpts;
};

} // namespace mc
} // namespace adore

#endif // ADORE_MC_CORENETMODEL_H
