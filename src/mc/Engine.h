//===- mc/Engine.h - Unified parallel exploration engine ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single breadth-first exploration core behind every safety claim in
/// this reproduction: mc::explore, audit::exploreAudited, the benches and
/// the tests all instantiate this engine with a VisitedStore policy (see
/// VisitedStore.h) instead of maintaining their own search loops.
///
/// Determinism is the design center. The engine is level-synchronous:
/// the frontier of depth d is a vector in canonical BFS order, and depth
/// d+1 is derived from it in three barrier-separated steps —
///
///   expand  (parallel over frontier slots)  generate successors, carry
///           (state, fingerprint) so nothing is ever re-hashed, and
///           pre-filter revisits against the frozen store of depths <= d;
///   dedup   (parallel over store shards)    insert the surviving
///           candidates shard-by-shard; a shard is owned by exactly one
///           worker per phase, and its candidate subsequence is processed
///           in global BFS order, so which parent "wins" a state, every
///           node number, and every audit tally is independent of the
///           thread count — no locks needed, only barriers;
///   settle  (sequential, cheap)             walk the candidates in BFS
///           order, count states/transitions, apply the MaxStates bound,
///           pick up the FIRST violation in canonical order, and emit the
///           next frontier.
///
/// With one thread the engine streams candidates through the store
/// directly (no buffering) and stops mid-level exactly like the historic
/// sequential checker; the phased path reproduces that candidate order
/// bit for bit, so ExploreResult — including counterexample traces,
/// per-depth state counts and the truncation point — is byte-identical
/// across thread counts. Large levels are processed in bounded chunks so
/// a violation found early does not force expanding the whole level.
///
/// Thread count comes from ExploreOptions::Threads, or the
/// ADORE_MC_THREADS environment variable when Threads is 0.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_ENGINE_H
#define ADORE_MC_ENGINE_H

#include "mc/VisitedStore.h"
#include "support/Stats.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace adore {
namespace mc {

/// Exploration limits and engine knobs.
struct ExploreOptions {
  /// Stop expanding past this depth (number of transitions from an
  /// initial state). 0 means unbounded.
  size_t MaxDepth = 0;
  /// Abort exploration after this many distinct states. 0 = unbounded.
  size_t MaxStates = 0;
  /// Worker threads. 0 = take ADORE_MC_THREADS from the environment
  /// (default 1). Results are identical for every value.
  unsigned Threads = 0;
  /// Invoked after every expanded BFS level with running totals and
  /// throughput; leave empty for no progress reporting.
  std::function<void(const ExploreProgress &)> OnProgress;
};

/// Exploration outcome. Every field is a deterministic function of the
/// model and the bounds — never of the thread count or the wall clock.
struct ExploreResult {
  /// First invariant violation found, if any.
  std::optional<std::string> Violation;
  /// Action labels from an initial state to the violating state.
  std::vector<std::string> Trace;
  /// Rendering of the violating state.
  std::string ViolatingState;
  /// Distinct states visited (per the store policy's identity).
  size_t States = 0;
  /// Transitions generated (including duplicates).
  size_t Transitions = 0;
  /// Deepest level fully or partially expanded.
  size_t Depth = 0;
  /// True when MaxStates stopped the search before the frontier drained.
  bool Truncated = false;
  /// Distinct states first discovered at each depth; index = depth.
  std::vector<size_t> StatesPerDepth;
  /// Largest BFS level expanded (frontier high-water mark).
  size_t PeakFrontier = 0;

  bool exhausted() const { return !Violation && !Truncated; }
  bool foundViolation() const { return Violation.has_value(); }
};

/// Classification tallies over every visit the engine performed, cut off
/// at the exact point the search stopped. Only meaningful for stores
/// with exact identity (Exact/Audit); audit::AuditStats is built from
/// these.
struct VisitTallies {
  /// Distinct states by the store's identity.
  size_t DistinctStates = 0;
  /// Distinct fingerprints observed among them.
  size_t DistinctFingerprints = 0;
  /// New states whose fingerprint was already taken: states a bare-
  /// fingerprint search would have wrongly pruned.
  size_t Collisions = 0;
  /// Hits confirmed to be true revisits.
  size_t VerifiedRevisits = 0;
};

/// Resolves the ADORE_MC_THREADS environment variable; 1 when unset or
/// unparsable. Capped at the shard count — more workers than shards
/// cannot help the dedup phase.
inline unsigned defaultThreadCount() {
  if (const char *E = std::getenv("ADORE_MC_THREADS")) {
    char *End = nullptr;
    unsigned long V = std::strtoul(E, &End, 10);
    if (End != E && *End == '\0' && V >= 1 && V <= VisitedShards)
      return static_cast<unsigned>(V);
  }
  return 1;
}

namespace detail {

/// A fixed crew of N workers (the calling thread is worker 0) that
/// repeatedly executes tasks in lockstep: run(F) has every worker call
/// F(workerIndex) and returns when all are done. Phase hand-off is two
/// std::barrier waits, whose completion provides the happens-before
/// edges the store's no-lock sharding discipline relies on.
class WorkCrew {
public:
  explicit WorkCrew(unsigned Threads)
      : Count(Threads),
        StartGate(static_cast<std::ptrdiff_t>(Threads)),
        DoneGate(static_cast<std::ptrdiff_t>(Threads)) {
    for (unsigned I = 1; I < Count; ++I)
      Workers.emplace_back([this, I] {
        for (;;) {
          StartGate.arrive_and_wait();
          if (Quit.load(std::memory_order_acquire))
            return;
          Task(I);
          DoneGate.arrive_and_wait();
        }
      });
  }

  ~WorkCrew() {
    if (Count > 1) {
      Quit.store(true, std::memory_order_release);
      StartGate.arrive_and_wait();
    }
    for (std::thread &W : Workers)
      W.join();
  }

  WorkCrew(const WorkCrew &) = delete;
  WorkCrew &operator=(const WorkCrew &) = delete;

  unsigned size() const { return Count; }

  template <typename FnT> void run(FnT &&Fn) {
    if (Count == 1) {
      Fn(0u);
      return;
    }
    Task = std::forward<FnT>(Fn);
    StartGate.arrive_and_wait();
    Task(0);
    DoneGate.arrive_and_wait();
  }

private:
  unsigned Count;
  std::function<void(unsigned)> Task;
  std::atomic<bool> Quit{false};
  std::barrier<> StartGate, DoneGate;
  std::vector<std::thread> Workers;
};

} // namespace detail

/// The exploration engine: one search loop, parameterized by the
/// visited-set policy. See the file comment for the phase structure.
template <typename ModelT, typename StoreT = FingerprintStore>
class Engine {
public:
  using State = typename ModelT::State;

  Engine(ModelT &M, ExploreOptions Opts = {})
      : M(M), Opts(std::move(Opts)) {}

  /// Runs the search. \p OnViolation receives the violating state itself
  /// (for rendering or dissection beyond the textual describe()).
  template <typename OnViolationT>
  ExploreResult run(OnViolationT &&OnViolation) {
    unsigned Threads = Opts.Threads ? Opts.Threads : defaultThreadCount();
    if (Threads > VisitedShards)
      Threads = VisitedShards;
    Start = Clock::now();

    if (!seedInitialStates(OnViolation))
      return std::move(Res);

    if (Threads <= 1)
      runSequential(OnViolation);
    else
      runParallel(Threads, OnViolation);
    return std::move(Res);
  }

  ExploreResult run() {
    return run([](const State &) {});
  }

  /// Visit classification totals for the completed run (audit layer).
  const VisitTallies &tallies() const { return Tallies; }

private:
  using Clock = std::chrono::steady_clock;

  struct FrontierEntry {
    State St;
    uint64_t Fp;
    NodeRef Ref;
  };

  /// One generated successor, buffered between the phases of a chunk.
  struct Candidate {
    std::optional<State> St; ///< Dropped for pre-filtered revisits.
    uint64_t Fp = 0;
    std::string Enc;
    std::string Action;
    NodeRef Parent;
    // Dedup-phase results:
    bool PriorRevisit = false; ///< Known before this level's chunk.
    bool IsNew = false;
    bool NewFp = false;
    NodeRef Ref;
    std::optional<std::string> Violation;
  };

  ModelT &M;
  ExploreOptions Opts;
  StoreT Store;
  ExploreResult Res;
  VisitTallies Tallies;
  Clock::time_point Start;

  std::vector<FrontierEntry> Level, NextLevel;
  size_t LevelNew = 0; ///< States first discovered at the depth underway.

  static std::string encodeIfNeeded(const ModelT &M, const State &S) {
    if constexpr (StoreT::NeedsEncoding)
      return M.encode(S);
    else
      return std::string();
  }

  void tallyRevisit() { ++Tallies.VerifiedRevisits; }

  void tallyNew(bool NewFp) {
    ++Tallies.DistinctStates;
    if (NewFp)
      ++Tallies.DistinctFingerprints;
    else
      ++Tallies.Collisions;
  }

  template <typename OnViolationT>
  void reportViolation(const State &S, NodeRef Ref, std::string Message,
                       OnViolationT &&OnViolation) {
    OnViolation(S);
    Res.Violation = std::move(Message);
    Res.ViolatingState = M.describe(S);
    std::vector<std::string> Rev;
    for (NodeRef Cur = Ref;;) {
      const VisitNode &Nd = Store.node(Cur);
      if (Nd.Parent == Cur)
        break;
      Rev.push_back(Nd.Action);
      Cur = Nd.Parent;
    }
    Res.Trace.assign(Rev.rbegin(), Rev.rend());
  }

  /// Inserts the initial states (always sequentially — the set is tiny
  /// and its order defines the root of the canonical BFS order).
  /// Returns false when the search already ended (violating initial
  /// state, or no initial states at all).
  template <typename OnViolationT>
  bool seedInitialStates(OnViolationT &&OnViolation) {
    LevelNew = 0;
    bool Stop = false;
    for (State &Init : M.initialStates()) {
      uint64_t Fp = M.fingerprint(Init);
      VisitOutcome Out = Store.insert(Fp, encodeIfNeeded(M, Init),
                                      SelfParent, std::string());
      if (!Out.IsNew) {
        tallyRevisit();
        continue;
      }
      tallyNew(Out.NewFingerprint);
      ++Res.States;
      ++LevelNew;
      if (auto V = M.invariant(Init)) {
        reportViolation(Init, Out.Ref, std::move(*V), OnViolation);
        Stop = true;
        break;
      }
      Level.push_back(FrontierEntry{std::move(Init), Fp, Out.Ref});
    }
    if (LevelNew)
      Res.StatesPerDepth.push_back(LevelNew);
    return !Stop && !Level.empty();
  }

  void progress(size_t Depth) {
    if (!Opts.OnProgress)
      return;
    ExploreProgress P;
    P.States = Res.States;
    P.Transitions = Res.Transitions;
    P.Depth = Depth;
    P.FrontierSize = NextLevel.size();
    P.Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
    Opts.OnProgress(P);
  }

  /// True when the level at \p Depth may not be expanded further.
  bool depthCapped(size_t Depth) {
    Res.Depth = std::max(Res.Depth, Depth);
    Res.PeakFrontier = std::max(Res.PeakFrontier, Level.size());
    return Opts.MaxDepth && Depth >= Opts.MaxDepth;
  }

  //===--------------------------------------------------------------===//
  // Sequential path: stream candidates straight through the store.
  //===--------------------------------------------------------------===//

  template <typename OnViolationT>
  void runSequential(OnViolationT &&OnViolation) {
    for (size_t Depth = 0; !Level.empty(); ++Depth) {
      if (depthCapped(Depth))
        break;
      LevelNew = 0;
      bool Stop = false;
      for (FrontierEntry &E : Level) {
        M.forEachSuccessor(E.St, [&](State Next, std::string Action) {
          if (Stop)
            return;
          ++Res.Transitions;
          uint64_t Fp = M.fingerprint(Next);
          VisitOutcome Out = Store.insert(Fp, encodeIfNeeded(M, Next),
                                          E.Ref, std::move(Action));
          if (!Out.IsNew) {
            tallyRevisit();
            return;
          }
          tallyNew(Out.NewFingerprint);
          ++Res.States;
          ++LevelNew;
          if (auto V = M.invariant(Next)) {
            reportViolation(Next, Out.Ref, std::move(*V), OnViolation);
            Stop = true;
            return;
          }
          if (Opts.MaxStates && Res.States >= Opts.MaxStates) {
            Res.Truncated = true;
            Stop = true;
            return;
          }
          NextLevel.push_back(FrontierEntry{std::move(Next), Fp, Out.Ref});
        });
        if (Stop)
          break;
      }
      if (LevelNew)
        Res.StatesPerDepth.push_back(LevelNew);
      if (Stop)
        break;
      progress(Depth);
      Level = std::move(NextLevel);
      NextLevel.clear();
    }
  }

  //===--------------------------------------------------------------===//
  // Parallel path: expand / dedup / settle per chunk, barriers between.
  //===--------------------------------------------------------------===//

  template <typename OnViolationT>
  void runParallel(unsigned Threads, OnViolationT &&OnViolation) {
    detail::WorkCrew Crew(Threads);
    // Slots expanded per chunk: enough to keep every worker busy, small
    // enough that an early violation or truncation wastes little work
    // and the candidate buffer stays bounded.
    const size_t ChunkSlots = std::max<size_t>(64, 64 * Threads);

    std::vector<std::vector<Candidate>> SlotBufs(ChunkSlots);
    std::array<std::vector<Candidate *>, VisitedShards> ShardWork;

    for (size_t Depth = 0; !Level.empty(); ++Depth) {
      if (depthCapped(Depth))
        break;
      LevelNew = 0;
      bool Stop = false;

      for (size_t Base = 0; Base < Level.size() && !Stop;
           Base += ChunkSlots) {
        size_t Slots = std::min(ChunkSlots, Level.size() - Base);

        // Phase 1 — expand: generate successors of this chunk's slots,
        // fingerprint once, and pre-filter against the frozen store.
        std::atomic<size_t> NextSlot{0};
        Crew.run([&](unsigned) {
          for (;;) {
            size_t I = NextSlot.fetch_add(1, std::memory_order_relaxed);
            if (I >= Slots)
              return;
            std::vector<Candidate> &Buf = SlotBufs[I];
            Buf.clear();
            const FrontierEntry &E = Level[Base + I];
            M.forEachSuccessor(E.St, [&](State Next,
                                         std::string Action) {
              Candidate C;
              C.Fp = M.fingerprint(Next);
              std::string Enc = encodeIfNeeded(M, Next);
              if (Store.probe(C.Fp, Enc)) {
                C.PriorRevisit = true;
              } else {
                C.St = std::move(Next);
                C.Enc = std::move(Enc);
                C.Action = std::move(Action);
                C.Parent = E.Ref;
              }
              Buf.push_back(std::move(C));
            });
          }
        });

        // Route the surviving candidates to their shards, preserving
        // global BFS order within each shard's worklist.
        for (auto &W : ShardWork)
          W.clear();
        for (size_t I = 0; I != Slots; ++I)
          for (Candidate &C : SlotBufs[I])
            if (!C.PriorRevisit)
              ShardWork[shardOfFingerprint(C.Fp)].push_back(&C);

        // Phase 2 — dedup: one worker owns a shard at a time; inserts
        // happen in global BFS order within the shard, so node numbers
        // and winning parents are thread-count independent. Invariants
        // run here too, in parallel, on newly inserted states only.
        std::atomic<size_t> NextShard{0};
        Crew.run([&](unsigned) {
          for (;;) {
            size_t S = NextShard.fetch_add(1, std::memory_order_relaxed);
            if (S >= VisitedShards)
              return;
            for (Candidate *C : ShardWork[S]) {
              VisitOutcome Out =
                  Store.insert(C->Fp, std::move(C->Enc), C->Parent,
                               std::move(C->Action));
              C->IsNew = Out.IsNew;
              C->NewFp = Out.NewFingerprint;
              C->Ref = Out.Ref;
              if (Out.IsNew) {
                if (auto V = M.invariant(*C->St))
                  C->Violation = std::move(*V);
              } else {
                C->St.reset(); // Free the duplicate immediately.
              }
            }
          }
        });

        // Phase 3 — settle: sequential scan in canonical BFS order;
        // totals, bounds and the first violation land exactly where the
        // streaming path would have put them.
        for (size_t I = 0; I != Slots && !Stop; ++I) {
          for (Candidate &C : SlotBufs[I]) {
            ++Res.Transitions;
            if (C.PriorRevisit || !C.IsNew) {
              tallyRevisit();
              continue;
            }
            tallyNew(C.NewFp);
            ++Res.States;
            ++LevelNew;
            if (C.Violation) {
              reportViolation(*C.St, C.Ref, std::move(*C.Violation),
                              OnViolation);
              Stop = true;
              break;
            }
            if (Opts.MaxStates && Res.States >= Opts.MaxStates) {
              Res.Truncated = true;
              Stop = true;
              break;
            }
            NextLevel.push_back(
                FrontierEntry{std::move(*C.St), C.Fp, C.Ref});
          }
        }
      }

      if (LevelNew)
        Res.StatesPerDepth.push_back(LevelNew);
      if (Stop)
        break;
      progress(Depth);
      Level = std::move(NextLevel);
      NextLevel.clear();
    }
  }
};

} // namespace mc
} // namespace adore

#endif // ADORE_MC_ENGINE_H
