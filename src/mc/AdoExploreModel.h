//===- mc/AdoExploreModel.h - ADO model as a model-checkable system -------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts the original ADO model (Appendix D.1) to the Explorer
/// interface: successors cover all valid pull/invoke/push outcomes of
/// every client over a fixed replica-count abstraction. The ADO model
/// has no configurations, so this is the paper's *baseline* abstraction
/// in the E2 effort comparison (CADO- and reconfiguration-free).
///
/// The checked invariant is the ADO analog of replicated state safety:
/// the persistent log never rewrites (we track a monotonically growing
/// shadow via the event history) and live caches always descend from the
/// log head, so committed state is never forked. Owner-per-time
/// uniqueness is structural (the owner map is a map).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_ADOEXPLOREMODEL_H
#define ADORE_MC_ADOEXPLOREMODEL_H

#include "ado/Ado.h"

#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace mc {

/// Bounds for ADO exploration.
struct AdoExploreModelOptions {
  unsigned NumClients = 3;
  Time MaxTime = 3;
  size_t MaxLiveCaches = 3;
  size_t MaxCommitted = 3;
};

/// The ADO transition system.
class AdoExploreModel {
public:
  using State = ado::AdoObject;

  explicit AdoExploreModel(AdoExploreModelOptions Opts = {}) : Opts(Opts) {}

  std::vector<State> initialStates() const { return {ado::AdoObject()}; }

  uint64_t fingerprint(const State &St) const { return St.fingerprint(); }

  /// Canonical byte encoding for the audit layer: injective where the
  /// fingerprint is merely collision-resistant.
  std::string encode(const State &St) const { return St.encode(); }

  /// Exact state identity under the checker's canonical equivalence.
  bool equal(const State &A, const State &B) const {
    return A.encode() == B.encode();
  }

  std::optional<std::string> invariant(const State &St) const {
    // Live caches must descend from the log head: a violation would mean
    // a commit forked away from surviving uncommitted state.
    ado::CidRef Head = St.persistLog().empty()
                           ? ado::RootCid
                           : St.persistLog().back().first;
    for (ado::CidRef Cid : St.liveCids())
      if (!St.isAncestorOrSelf(Head, Cid))
        return std::string("live cache detached from the persistent log");
    return std::nullopt;
  }

  std::string describe(const State &St) const { return St.dump(); }

  template <typename FnT> void forEachSuccessor(const State &St,
                                                FnT &&Fn) const {
    for (NodeId Client = 1; Client <= Opts.NumClients; ++Client) {
      for (const auto &Choice :
           St.enumeratePullChoices(Client, Opts.MaxTime)) {
        State Next = St;
        Next.pull(Client, Choice);
        Fn(std::move(Next), "pull(" + std::to_string(Client) + ",t=" +
                                std::to_string(Choice.T) + ")");
      }
      if (St.canInvoke(Client) &&
          St.liveCacheCount() < Opts.MaxLiveCaches) {
        State Next = St;
        Next.invoke(Client, 1);
        Fn(std::move(Next), "invoke(" + std::to_string(Client) + ")");
      }
      if (St.persistLog().size() < Opts.MaxCommitted) {
        for (ado::CidRef Cid : St.enumeratePushChoices(Client)) {
          State Next = St;
          Next.push(Client, Cid);
          Fn(std::move(Next), "push(" + std::to_string(Client) + ")");
        }
      }
    }
  }

private:
  AdoExploreModelOptions Opts;
};

} // namespace mc
} // namespace adore

#endif // ADORE_MC_ADOEXPLOREMODEL_H
