//===- mc/AdoreModel.h - Adore as a model-checkable system ----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts the Adore semantics to the Explorer Model interface. Successor
/// states cover every operation of every replica under every valid oracle
/// choice, so exhausting this model up to its bounds checks the paper's
/// safety theorem over the full nondeterminism of the Fig. 27 oracles.
///
/// Bounds that keep the space finite:
///  - MaxCaches: states whose tree reached this size are not expanded
///    with tree-growing operations;
///  - MaxTime: pull choices beyond this timestamp are not offered
///    (failed elections bump timestamps without bound otherwise);
///  - method payloads are the constant 1: method identity never affects
///    any transition guard, so this is a sound symmetry reduction for
///    safety checking.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_MC_ADOREMODEL_H
#define ADORE_MC_ADOREMODEL_H

#include "adore/Invariants.h"
#include "adore/Oracle.h"

#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace mc {

/// Bounds and instrumentation knobs for Adore exploration.
struct AdoreModelOptions {
  /// Inclusive cap on cache-tree size; tree-growing ops stop afterwards.
  size_t MaxCaches = 8;
  /// Inclusive cap on election timestamps offered by the pull oracle.
  Time MaxTime = 4;
  /// Skip non-quorum pull supporter sets (loses the preemption-only
  /// behaviours; a documented reduction for large-bound sweeps).
  bool PullQuorumsOnly = false;
  /// Skip non-quorum push supporter sets (same caveat).
  bool PushQuorumsOnly = false;
  /// Which invariants to evaluate on every state.
  InvariantSelection Invariants;
};

/// The Adore transition system, parameterized by scheme and semantics
/// options (including the R1/R2/R3 ablation toggles).
class AdoreModel {
public:
  using State = AdoreState;

  AdoreModel(const ReconfigScheme &Scheme, Config InitialConf,
             SemanticsOptions SemOpts = {}, AdoreModelOptions Opts = {})
      : Sem(Scheme, SemOpts), InitialConf(std::move(InitialConf)),
        Opts(Opts) {}

  const Semantics &semantics() const { return Sem; }

  /// Replaces the genesis initial state with an explicit seed, enabling
  /// "scenario-seeded" checking: exhaustively explore every continuation
  /// of a hand-constructed prefix (used for the Fig. 4 bug hunt, whose
  /// full-depth space from genesis is beyond exhaustive reach).
  void seedWith(State Seed) { SeedState.emplace(std::move(Seed)); }

  std::vector<State> initialStates() const {
    if (SeedState)
      return {*SeedState};
    return {AdoreState(Sem.scheme(), InitialConf)};
  }

  uint64_t fingerprint(const State &St) const { return St.fingerprint(); }

  /// Canonical byte encoding for the audit layer: injective where the
  /// fingerprint is merely collision-resistant.
  std::string encode(const State &St) const { return St.encode(); }

  /// Exact state identity under the checker's canonical equivalence.
  bool equal(const State &A, const State &B) const {
    return A.encode() == B.encode();
  }

  std::optional<std::string> invariant(const State &St) const {
    return checkInvariants(St.Tree, Opts.Invariants);
  }

  std::string describe(const State &St) const { return St.dump(); }

  /// Enumerates successor states: all replicas x all operations x all
  /// valid oracle choices within bounds.
  template <typename FnT> void forEachSuccessor(const State &St,
                                                FnT &&Fn) const {
    bool CanGrow = St.Tree.size() < Opts.MaxCaches;
    NodeSet Universe =
        St.Tree.universe(Sem.scheme())
            .unionWith(Sem.options().ExtraNodes);
    for (NodeId Nid : Universe) {
      for (const PullChoice &Choice : Sem.enumeratePullChoices(St, Nid)) {
        if (Choice.T > Opts.MaxTime)
          continue;
        // A non-quorum pull only moves timestamps; allow it even at the
        // tree-size bound since it cannot grow the tree.
        bool Grows = Sem.scheme().isQuorum(
            Choice.Q, St.Tree.cache(St.Tree.mostRecent(Choice.Q)).Conf);
        if (Grows && !CanGrow)
          continue;
        if (!Grows && Opts.PullQuorumsOnly)
          continue;
        State Next = St;
        Sem.pull(Next, Nid, Choice);
        Fn(std::move(Next), "pull(n=" + std::to_string(Nid) +
                                ",Q=" + Choice.Q.str() +
                                ",t=" + std::to_string(Choice.T) + ")");
      }
      if (CanGrow && Sem.canInvoke(St, Nid)) {
        State Next = St;
        Sem.invoke(Next, Nid, /*Method=*/1);
        Fn(std::move(Next), "invoke(n=" + std::to_string(Nid) + ")");
      }
      if (CanGrow) {
        for (const Config &Ncf : Sem.enumerateReconfigs(St, Nid)) {
          State Next = St;
          Sem.reconfig(Next, Nid, Ncf);
          Fn(std::move(Next), "reconfig(n=" + std::to_string(Nid) +
                                  ",cf=" + Ncf.str() + ")");
        }
      }
      for (const PushChoice &Choice : Sem.enumeratePushChoices(St, Nid)) {
        bool Grows = Sem.scheme().isQuorum(
            Choice.Q, St.Tree.cache(Choice.Target).Conf);
        if (Grows && !CanGrow)
          continue;
        if (!Grows && Opts.PushQuorumsOnly)
          continue;
        State Next = St;
        Sem.push(Next, Nid, Choice);
        Fn(std::move(Next),
           "push(n=" + std::to_string(Nid) + ",Q=" + Choice.Q.str() +
               ",tgt=" + St.Tree.cache(Choice.Target).str() + ")");
      }
    }
  }

private:
  Semantics Sem;
  Config InitialConf;
  AdoreModelOptions Opts;
  std::optional<State> SeedState;
};

} // namespace mc
} // namespace adore

#endif // ADORE_MC_ADOREMODEL_H
