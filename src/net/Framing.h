//===- net/Framing.h - Length framing for TCP byte streams ----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stream framing the TCP transport wraps around rt/Wire.h frames:
/// a little-endian u32 payload length followed by the payload bytes,
/// written with the same codec the wire format and the WAL use — so a
/// message travels over TCP byte-identical to how the in-process bus
/// delivers it, plus exactly four prefix bytes.
///
/// The FrameSplitter reassembles frames from arbitrary read() chunk
/// boundaries, using the codec's bounds-checked Cursor to parse each
/// header; a frame claiming more than the codec's blob bound poisons
/// the stream (the caller drops the connection), mirroring how a
/// malformed bus frame is dropped rather than trusted.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_NET_FRAMING_H
#define ADORE_NET_FRAMING_H

#include "core/Codec.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace adore {
namespace net {

/// Max payload one stream frame may claim; shares the codec's sanity
/// bound, so nothing framed here can smuggle in what a wire decoder
/// would reject as absurd anyway.
constexpr uint64_t MaxFramePayload = codec::MaxBlob;

/// Bytes the length prefix adds in front of every payload.
constexpr size_t FrameHeaderBytes = 4;

/// True iff \p Payload fits the framing bound.
inline bool frameable(const std::string &Payload) {
  return Payload.size() <= MaxFramePayload;
}

/// Appends the length-framed encoding of \p Payload to \p Out. The
/// caller must have checked frameable() first; oversized payloads are
/// dropped upstream, never truncated here.
inline void appendFrame(std::string &Out, const std::string &Payload) {
  codec::putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out += Payload;
}

/// Incremental reassembler: feed it raw stream bytes in whatever chunks
/// the socket produces, get complete payloads out in order. Single
/// connection, single thread.
class FrameSplitter {
public:
  /// Consumes \p N bytes from \p Data, invoking \p OnFrame(payload) for
  /// every completed frame. Returns false once the stream is poisoned
  /// (a header claimed more than MaxFramePayload) — the connection must
  /// be dropped, as no later byte can be trusted.
  template <typename Fn> bool feed(const char *Data, size_t N, Fn &&OnFrame) {
    if (Poisoned)
      return false;
    Buf.append(Data, N);
    for (;;) {
      if (Buf.size() - Pos < FrameHeaderBytes)
        break;
      codec::Cursor C{Buf, Pos};
      uint64_t Len = C.u32();
      if (Len > MaxFramePayload) {
        Poisoned = true;
        return false;
      }
      if (Buf.size() - C.Pos < Len)
        break;
      std::string Payload = Buf.substr(C.Pos, static_cast<size_t>(Len));
      Pos = C.Pos + static_cast<size_t>(Len);
      OnFrame(std::move(Payload));
    }
    // Compact lazily: only once the consumed prefix dominates, so
    // steady-state streaming is amortized O(1) per byte.
    if (Pos > 4096 && Pos * 2 >= Buf.size()) {
      Buf.erase(0, Pos);
      Pos = 0;
    }
    return true;
  }

  /// Bytes buffered but not yet returned as frames.
  size_t pendingBytes() const { return Buf.size() - Pos; }

  bool poisoned() const { return Poisoned; }

private:
  std::string Buf;
  size_t Pos = 0;
  bool Poisoned = false;
};

} // namespace net
} // namespace adore

#endif // ADORE_NET_FRAMING_H
