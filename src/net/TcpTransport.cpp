//===- net/TcpTransport.cpp - Loopback TCP transport backend ----------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/TcpTransport.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

using namespace adore;
using namespace adore::net;

namespace {

/// The one place the POSIX sockaddr aliasing contract is honored.
/// adore_lint allowlists this file for decode-cast: the cast converts
/// an address we built, not untrusted bytes we received.
const sockaddr *asSockaddr(const sockaddr_in &A) {
  return reinterpret_cast<const sockaddr *>(&A);
}
sockaddr *asSockaddr(sockaddr_in &A) {
  return reinterpret_cast<sockaddr *>(&A);
}

sockaddr_in loopbackAddr(uint16_t Port) {
  sockaddr_in A;
  std::memset(&A, 0, sizeof(A));
  A.sin_family = AF_INET;
  A.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  A.sin_port = htons(Port);
  return A;
}

void setNoDelay(int Fd) {
  int One = 1;
  (void)setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

/// writev batches at most this many queued frames per syscall.
constexpr int MaxIov = 64;

} // namespace

TcpTransport::TcpTransport(TcpTransportOptions Opts) : Opts(Opts) {
  EpollFd = epoll_create1(EPOLL_CLOEXEC);
  WakeFd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  {
    sync::MutexLock Lock(Mu);
    Fds[WakeFd] = FdInfo{FdKind::Wake, InvalidNodeId};
  }
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = WakeFd;
  (void)epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev);
  Loop = std::thread([this] { loop(); });
}

TcpTransport::~TcpTransport() {
  {
    sync::MutexLock Lock(Mu);
    Stop = true;
  }
  wakeLoop();
  if (Loop.joinable())
    Loop.join();
  sync::MutexLock Lock(Mu);
  for (const auto &KV : Fds)
    (void)::close(KV.first);
  Fds.clear();
  (void)::close(EpollFd);
}

uint64_t TcpTransport::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TcpTransport::wakeLoop() {
  uint64_t One = 1;
  (void)!::write(WakeFd, &One, sizeof(One));
}

void TcpTransport::attach(NodeId Id, Handler H) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return;
  sockaddr_in A = loopbackAddr(0);
  if (::bind(Fd, asSockaddr(A), sizeof(A)) != 0 || ::listen(Fd, 128) != 0) {
    (void)::close(Fd);
    return;
  }
  socklen_t Len = sizeof(A);
  (void)::getsockname(Fd, asSockaddr(A), &Len);
  uint16_t Port = ntohs(A.sin_port);

  sync::MutexLock Lock(Mu);
  // Replacing an endpoint retires its old listener; established inbound
  // connections keep delivering (to the new handler — the destination
  // id is what names them).
  auto It = Endpoints.find(Id);
  if (It != Endpoints.end() && It->second.ListenFd >= 0) {
    Fds.erase(It->second.ListenFd);
    (void)::close(It->second.ListenFd); // close() drops it from epoll.
  }
  Endpoint &E = Endpoints[Id];
  E.ListenFd = Fd;
  E.Port = Port;
  E.Deliver = std::move(H);
  Fds[Fd] = FdInfo{FdKind::Listen, Id};
  epoll_event Ev{};
  Ev.events = EPOLLIN;
  Ev.data.fd = Fd;
  (void)epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
}

void TcpTransport::detach(NodeId Id) {
  sync::MutexLock Lock(Mu);
  if (Stop)
    return; // Loop gone; dtor closes everything.
  DetachQ.push_back(Id);
  uint64_t Gen = ++DetachGenRequested;
  wakeLoop();
  // Rendezvous: once the loop thread has drained this request, no
  // handler invocation for Id can be in flight (dispatch happens only
  // on that thread, between command drains).
  while (DetachGenDone < Gen && !Stop)
    Cv.wait(Mu);
}

void TcpTransport::post(NodeId To, std::string Frame) {
  if (!frameable(Frame)) {
    FramesDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  bool NeedWake = false;
  {
    sync::MutexLock Lock(Mu);
    if (Stop || Endpoints.find(To) == Endpoints.end()) {
      // Unknown destination: dropped like a packet to a dead host.
      FramesDropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Peer &P = Peers[To];
    size_t Framed = Frame.size() + FrameHeaderBytes;
    if (P.QueuedBytes + Framed > Opts.MaxQueuedBytesPerPeer) {
      FramesDropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::string Bytes;
    Bytes.reserve(Framed);
    appendFrame(Bytes, Frame);
    P.WriteQ.push_back(std::move(Bytes));
    P.QueuedBytes += Framed;
    // The loop only sleeps once every queued peer is armed (EPOLLOUT or
    // a retry timeout), so a wake is needed exactly on the empty ->
    // non-empty transition.
    NeedWake = P.WriteQ.size() == 1;
  }
  if (NeedWake)
    wakeLoop();
}

uint16_t TcpTransport::listenPort(NodeId Id) const {
  sync::MutexLock Lock(Mu);
  auto It = Endpoints.find(Id);
  return It == Endpoints.end() ? 0 : It->second.Port;
}

TcpTransportStats TcpTransport::stats() const {
  TcpTransportStats S;
  S.FramesDelivered = FramesDelivered.load(std::memory_order_relaxed);
  S.FramesDropped = FramesDropped.load(std::memory_order_relaxed);
  S.BytesSent = BytesSent.load(std::memory_order_relaxed);
  S.BytesReceived = BytesReceived.load(std::memory_order_relaxed);
  S.Dials = Dials.load(std::memory_order_relaxed);
  S.Accepts = Accepts.load(std::memory_order_relaxed);
  S.ConnectionDrops = ConnectionDrops.load(std::memory_order_relaxed);
  return S;
}

bool TcpTransport::processCommands() {
  if (DetachQ.empty())
    return false;
  for (NodeId Id : DetachQ) {
    auto It = Endpoints.find(Id);
    if (It != Endpoints.end()) {
      if (It->second.ListenFd >= 0) {
        Fds.erase(It->second.ListenFd);
        (void)::close(It->second.ListenFd);
      }
      Endpoints.erase(It);
    }
    // Inbound connections destined for the endpoint die with it.
    for (auto CI = Inbounds.begin(); CI != Inbounds.end();) {
      if (CI->second.Dest == Id) {
        Fds.erase(CI->first);
        (void)::close(CI->first);
        CI = Inbounds.erase(CI);
      } else {
        ++CI;
      }
    }
    // Our outgoing connection toward it, and anything still queued, are
    // dropped (datagram semantics); a later re-attach re-dials fresh.
    auto PI = Peers.find(Id);
    if (PI != Peers.end()) {
      Peer &P = PI->second;
      if (P.Fd >= 0) {
        Fds.erase(P.Fd);
        (void)::close(P.Fd);
      }
      FramesDropped.fetch_add(P.WriteQ.size(), std::memory_order_relaxed);
      Peers.erase(PI);
    }
  }
  DetachQ.clear();
  DetachGenDone = DetachGenRequested;
  return true;
}

void TcpTransport::acceptAll(NodeId Dest, int ListenFd) {
  for (;;) {
    int Fd = ::accept4(ListenFd, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (Fd < 0)
      return; // EAGAIN, or the listener was concurrently retired.
    setNoDelay(Fd);
    Accepts.fetch_add(1, std::memory_order_relaxed);
    {
      sync::MutexLock Lock(Mu);
      Inbounds[Fd] = Inbound{Dest, FrameSplitter{}};
      Fds[Fd] = FdInfo{FdKind::Inbound, Dest};
    }
    epoll_event Ev{};
    Ev.events = EPOLLIN;
    Ev.data.fd = Fd;
    (void)epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
  }
}

void TcpTransport::serviceInbound(int Fd) {
  char Buf[65536];
  for (;;) {
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R > 0) {
      BytesReceived.fetch_add(static_cast<uint64_t>(R),
                              std::memory_order_relaxed);
      std::vector<std::string> Frames;
      Handler Deliver;
      bool StreamOk = true;
      {
        sync::MutexLock Lock(Mu);
        auto It = Inbounds.find(Fd);
        if (It == Inbounds.end())
          return;
        StreamOk = It->second.Splitter.feed(
            Buf, static_cast<size_t>(R),
            [&Frames](std::string F) { Frames.push_back(std::move(F)); });
        auto EI = Endpoints.find(It->second.Dest);
        if (EI != Endpoints.end())
          Deliver = EI->second.Deliver;
      }
      if (Deliver) {
        for (std::string &F : Frames) {
          FramesDelivered.fetch_add(1, std::memory_order_relaxed);
          Deliver(std::move(F));
        }
      } else {
        FramesDropped.fetch_add(Frames.size(), std::memory_order_relaxed);
      }
      if (!StreamOk) {
        // Poisoned framing: nothing after a bogus header can be
        // trusted; drop the connection like a corrupt packet.
        sync::MutexLock Lock(Mu);
        closeInbound(Fd);
        return;
      }
      continue;
    }
    if (R < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    if (R < 0 && errno == EINTR)
      continue;
    // EOF or error: the sender's side is gone.
    sync::MutexLock Lock(Mu);
    closeInbound(Fd);
    return;
  }
}

void TcpTransport::closeInbound(int Fd) {
  auto It = Inbounds.find(Fd);
  if (It == Inbounds.end())
    return;
  Fds.erase(Fd);
  Inbounds.erase(It);
  (void)::close(Fd);
}

bool TcpTransport::dialPeer(NodeId To, Peer &P) {
  auto It = Endpoints.find(To);
  if (It == Endpoints.end()) {
    // Destination vanished since the frames were queued: drop them.
    FramesDropped.fetch_add(P.WriteQ.size(), std::memory_order_relaxed);
    P.WriteQ.clear();
    P.QueuedBytes = 0;
    P.HeadOffset = 0;
    return false;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    P.RetryAtUs = nowUs() + Opts.ReconnectDelayUs;
    return true;
  }
  setNoDelay(Fd);
  sockaddr_in A = loopbackAddr(It->second.Port);
  int R = ::connect(Fd, asSockaddr(A), sizeof(A));
  if (R != 0 && errno != EINPROGRESS) {
    (void)::close(Fd);
    P.RetryAtUs = nowUs() + Opts.ReconnectDelayUs;
    return true;
  }
  Dials.fetch_add(1, std::memory_order_relaxed);
  P.Fd = Fd;
  P.Connecting = R != 0;
  P.WantWrite = true;
  Fds[Fd] = FdInfo{FdKind::Outgoing, To};
  epoll_event Ev{};
  Ev.events = EPOLLIN | EPOLLOUT;
  Ev.data.fd = Fd;
  (void)epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
  return true;
}

void TcpTransport::dropPeerConnection(NodeId To, Peer &P, bool Backoff) {
  (void)To;
  if (P.Fd >= 0) {
    Fds.erase(P.Fd);
    (void)::close(P.Fd);
    P.Fd = -1;
    ConnectionDrops.fetch_add(1, std::memory_order_relaxed);
  }
  P.Connecting = false;
  P.WantWrite = false;
  if (P.HeadOffset != 0) {
    // A partially-sent frame cannot resume on a fresh connection (the
    // receiver starts at a frame boundary); it is lost with the link.
    P.QueuedBytes -= P.WriteQ.front().size() - P.HeadOffset;
    P.WriteQ.pop_front();
    P.HeadOffset = 0;
    FramesDropped.fetch_add(1, std::memory_order_relaxed);
  }
  if (Backoff)
    P.RetryAtUs = nowUs() + Opts.ReconnectDelayUs;
}

bool TcpTransport::flushPeer(NodeId To, Peer &P) {
  if (P.Fd < 0 || P.Connecting)
    return true;
  while (P.QueuedBytes != 0) {
    iovec Iov[MaxIov];
    int NIov = 0;
    size_t Off = P.HeadOffset;
    for (auto It = P.WriteQ.begin(); It != P.WriteQ.end() && NIov != MaxIov;
         ++It) {
      Iov[NIov].iov_base = It->data() + Off;
      Iov[NIov].iov_len = It->size() - Off;
      ++NIov;
      Off = 0;
    }
    ssize_t W = ::writev(P.Fd, Iov, NIov);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break; // Kernel buffer full: EPOLLOUT will resume us.
      dropPeerConnection(To, P, /*Backoff=*/true);
      return false;
    }
    BytesSent.fetch_add(static_cast<uint64_t>(W), std::memory_order_relaxed);
    size_t Left = static_cast<size_t>(W);
    while (Left != 0) {
      std::string &Front = P.WriteQ.front();
      size_t Avail = Front.size() - P.HeadOffset;
      if (Left >= Avail) {
        Left -= Avail;
        P.QueuedBytes -= Avail;
        P.WriteQ.pop_front();
        P.HeadOffset = 0;
      } else {
        P.HeadOffset += Left;
        P.QueuedBytes -= Left;
        Left = 0;
      }
    }
  }
  bool Want = P.QueuedBytes != 0;
  if (Want != P.WantWrite) {
    P.WantWrite = Want;
    epoll_event Ev{};
    Ev.events = EPOLLIN | (Want ? EPOLLOUT : 0u);
    Ev.data.fd = P.Fd;
    (void)epoll_ctl(EpollFd, EPOLL_CTL_MOD, P.Fd, &Ev);
  }
  return true;
}

uint64_t TcpTransport::servicePeers() {
  sync::MutexLock Lock(Mu);
  uint64_t Earliest = 0;
  uint64_t Now = nowUs();
  for (auto &KV : Peers) {
    Peer &P = KV.second;
    if (P.QueuedBytes == 0)
      continue;
    if (P.Fd < 0) {
      if (P.RetryAtUs > Now) {
        if (Earliest == 0 || P.RetryAtUs < Earliest)
          Earliest = P.RetryAtUs;
        continue;
      }
      if (!dialPeer(KV.first, P))
        continue;
    }
    if (P.Fd >= 0 && !P.Connecting)
      (void)flushPeer(KV.first, P);
  }
  return Earliest;
}

void TcpTransport::loop() {
  epoll_event Events[64];
  for (;;) {
    {
      sync::MutexLock Lock(Mu);
      if (processCommands())
        Cv.notifyAll();
      if (Stop) {
        // Release any detach() still parked on the rendezvous.
        DetachGenDone = DetachGenRequested;
        Cv.notifyAll();
        return;
      }
    }
    uint64_t NextRetryUs = servicePeers();
    int TimeoutMs = -1;
    if (NextRetryUs != 0) {
      uint64_t Now = nowUs();
      TimeoutMs = NextRetryUs > Now
                      ? static_cast<int>((NextRetryUs - Now) / 1000 + 1)
                      : 0;
    }
    int N = ::epoll_wait(EpollFd, Events, 64, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    for (int I = 0; I != N; ++I) {
      int Fd = Events[I].data.fd;
      uint32_t Ev = Events[I].events;
      FdKind Kind;
      NodeId Id;
      {
        sync::MutexLock Lock(Mu);
        auto It = Fds.find(Fd);
        if (It == Fds.end())
          continue; // Stale event for an fd already retired.
        Kind = It->second.Kind;
        Id = It->second.Id;
      }
      switch (Kind) {
      case FdKind::Wake: {
        uint64_t V;
        while (::read(WakeFd, &V, sizeof(V)) == sizeof(V)) {
        }
        break;
      }
      case FdKind::Listen:
        acceptAll(Id, Fd);
        break;
      case FdKind::Inbound:
        serviceInbound(Fd);
        break;
      case FdKind::Outgoing: {
        sync::MutexLock Lock(Mu);
        auto It = Peers.find(Id);
        if (It == Peers.end() || It->second.Fd != Fd)
          break;
        Peer &P = It->second;
        if ((Ev & (EPOLLERR | EPOLLHUP)) != 0) {
          dropPeerConnection(Id, P, /*Backoff=*/true);
          break;
        }
        if (P.Connecting) {
          int Err = 0;
          socklen_t Len = sizeof(Err);
          (void)::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &Len);
          if (Err != 0) {
            dropPeerConnection(Id, P, /*Backoff=*/true);
            break;
          }
          P.Connecting = false;
        }
        if ((Ev & EPOLLIN) != 0) {
          // The receiver never writes back on our outgoing connection;
          // readable means EOF or reset.
          char Probe[64];
          ssize_t R = ::recv(Fd, Probe, sizeof(Probe), 0);
          if (R == 0 || (R < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR)) {
            dropPeerConnection(Id, P, /*Backoff=*/true);
            break;
          }
        }
        (void)flushPeer(Id, P);
        break;
      }
      }
    }
  }
}
