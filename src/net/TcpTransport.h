//===- net/TcpTransport.h - Loopback TCP transport backend ----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-socket implementation of the rt::Transport seam: every
/// attached endpoint gets a loopback TCP listener on an ephemeral port
/// (the in-process port registry replaces DNS), and post() lazily dials
/// a per-destination connection, queues length-framed bytes, and lets a
/// single epoll loop thread flush them with vectored writev. Reads are
/// reassembled by net::FrameSplitter and delivered to the endpoint's
/// handler on the loop thread.
///
/// Semantics match the in-process Bus deliberately — best-effort
/// datagram-over-stream: frames to unattached ids are dropped, a
/// dropped connection loses whatever the kernel had not accepted and is
/// re-dialed on the next service pass (reconnect-on-drop), and per
/// (sender, destination) pair delivered frames arrive in post() order.
/// The consensus layer above tolerates all of it by design.
///
/// Threading: attach()/post() run on caller threads and only touch the
/// mutex-guarded registry/queues (plus thread-safe epoll_ctl for
/// attach's listener). ALL socket I/O, connection state, and handler
/// dispatch happen on the one loop thread; detach() rendezvouses with
/// it, so after detach returns the handler is never invoked again.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_NET_TCPTRANSPORT_H
#define ADORE_NET_TCPTRANSPORT_H

#include "net/Framing.h"
#include "rt/Transport.h"
#include "support/Ids.h"
#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace adore {
namespace net {

/// Tuning knobs; the defaults suit tests and loopback benches.
struct TcpTransportOptions {
  /// Per-destination cap on queued-but-unsent bytes; past it, post()
  /// drops frames (datagram semantics — backpressure never blocks a
  /// node's worker thread).
  size_t MaxQueuedBytesPerPeer = size_t(1) << 25;
  /// Backoff before re-dialing a destination whose connection dropped
  /// or refused.
  uint64_t ReconnectDelayUs = 2000;
};

/// Counters for tests and bench reports (monotone, racy-read safe).
struct TcpTransportStats {
  uint64_t FramesDelivered = 0;
  uint64_t FramesDropped = 0;
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;
  uint64_t Dials = 0;
  uint64_t Accepts = 0;
  uint64_t ConnectionDrops = 0;
};

/// See the file comment. One instance is one fabric: endpoints attached
/// to different instances cannot reach each other (separate port
/// registries), exactly like two disjoint buses.
class TcpTransport final : public rt::Transport {
public:
  explicit TcpTransport(TcpTransportOptions Opts = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport &) = delete;
  TcpTransport &operator=(const TcpTransport &) = delete;

  void attach(NodeId Id, Handler H) override;
  void detach(NodeId Id) override;
  void post(NodeId To, std::string Frame) override;

  /// The loopback port \p Id's listener is bound to, or 0 if not
  /// attached. Test introspection.
  uint16_t listenPort(NodeId Id) const;

  TcpTransportStats stats() const;

private:
  /// One attached endpoint: its listener and delivery handler.
  struct Endpoint {
    int ListenFd = -1;
    uint16_t Port = 0;
    Handler Deliver;
  };

  /// One outgoing connection's state, keyed by destination id.
  struct Peer {
    int Fd = -1;
    bool Connecting = false; ///< connect() in flight (EINPROGRESS).
    bool WantWrite = false;  ///< EPOLLOUT armed (partial flush pending).
    std::deque<std::string> WriteQ; ///< Framed bytes, oldest first.
    size_t HeadOffset = 0; ///< Sent prefix of WriteQ.front().
    size_t QueuedBytes = 0;
    uint64_t RetryAtUs = 0; ///< Earliest re-dial time (monotonic us).
  };

  /// One accepted inbound connection: frames on it are destined for
  /// the endpoint whose listener accepted it.
  struct Inbound {
    NodeId Dest = InvalidNodeId;
    FrameSplitter Splitter;
  };

  /// What an fd in the epoll set is; events carry the fd only.
  enum class FdKind : uint8_t { Wake, Listen, Inbound, Outgoing };
  struct FdInfo {
    FdKind Kind = FdKind::Wake;
    NodeId Id = InvalidNodeId; ///< Endpoint (Listen/Inbound) or peer.
  };

  void loop();
  /// Loop thread: drain pending detach requests; returns true if any
  /// were processed (waiters need a notify).
  bool processCommands() ADORE_REQUIRES(Mu);
  /// Loop thread: accept everything pending on a listener.
  void acceptAll(NodeId Dest, int ListenFd);
  /// Loop thread: read an inbound connection dry, dispatching frames.
  void serviceInbound(int Fd);
  /// Loop thread: dial/flush every peer with queued bytes whose retry
  /// time has passed. Returns the earliest future retry time (0 if
  /// none).
  uint64_t servicePeers();
  /// Loop thread: flush one peer's write queue with writev. Returns
  /// false if the connection died (already torn down).
  bool flushPeer(NodeId To, Peer &P) ADORE_REQUIRES(Mu);
  /// Loop thread: start a non-blocking dial toward \p To. Returns false
  /// if the destination is unknown (queue dropped).
  bool dialPeer(NodeId To, Peer &P) ADORE_REQUIRES(Mu);
  /// Loop thread: tear down a peer's connection and schedule a re-dial.
  void dropPeerConnection(NodeId To, Peer &P, bool Backoff)
      ADORE_REQUIRES(Mu);
  /// Loop thread: close an inbound connection.
  void closeInbound(int Fd) ADORE_REQUIRES(Mu);

  uint64_t nowUs() const;
  void wakeLoop();

  TcpTransportOptions Opts;

  mutable sync::Mutex Mu;
  std::map<NodeId, Endpoint> Endpoints ADORE_GUARDED_BY(Mu);
  std::map<NodeId, Peer> Peers ADORE_GUARDED_BY(Mu);
  std::map<int, Inbound> Inbounds ADORE_GUARDED_BY(Mu);
  std::map<int, FdInfo> Fds ADORE_GUARDED_BY(Mu);
  /// Detach rendezvous: ids queued for the loop thread to retire, and
  /// the generation counter it bumps when the queue is drained.
  std::vector<NodeId> DetachQ ADORE_GUARDED_BY(Mu);
  uint64_t DetachGenRequested ADORE_GUARDED_BY(Mu) = 0;
  uint64_t DetachGenDone ADORE_GUARDED_BY(Mu) = 0;
  bool Stop ADORE_GUARDED_BY(Mu) = false;
  sync::CondVar Cv;

  int EpollFd = -1; ///< Immutable after construction.
  int WakeFd = -1;  ///< Immutable after construction.

  std::atomic<uint64_t> FramesDelivered{0};
  std::atomic<uint64_t> FramesDropped{0};
  std::atomic<uint64_t> BytesSent{0};
  std::atomic<uint64_t> BytesReceived{0};
  std::atomic<uint64_t> Dials{0};
  std::atomic<uint64_t> Accepts{0};
  std::atomic<uint64_t> ConnectionDrops{0};

  std::thread Loop; ///< Started last in the ctor, joined in the dtor.
};

} // namespace net
} // namespace adore

#endif // ADORE_NET_TCPTRANSPORT_H
