//===- kv/KvStore.cpp - Replicated key-value store application --------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "kv/KvStore.h"

#include <cassert>

using namespace adore;
using namespace adore::kv;
using sim::SimLogEntry;
using sim::SimTime;

//===----------------------------------------------------------------------===//
// Operation encoding
//===----------------------------------------------------------------------===//

static constexpr uint64_t KvFieldMask = (uint64_t(1) << 31) - 1;

MethodId adore::kv::encodeKvOp(const KvOp &Op) {
  assert(Op.Key <= KvFieldMask && Op.Value <= KvFieldMask &&
         "key/value exceed 31 bits");
  return (static_cast<uint64_t>(Op.Kind) << 62) |
         (static_cast<uint64_t>(Op.Key) << 31) |
         static_cast<uint64_t>(Op.Value);
}

KvOp adore::kv::decodeKvOp(MethodId Method) {
  KvOp Op;
  Op.Kind = static_cast<KvOpKind>(Method >> 62);
  Op.Key = static_cast<uint32_t>((Method >> 31) & KvFieldMask);
  Op.Value = static_cast<uint32_t>(Method & KvFieldMask);
  return Op;
}

//===----------------------------------------------------------------------===//
// KvState
//===----------------------------------------------------------------------===//

void KvState::apply(const KvOp &Op) {
  switch (Op.Kind) {
  case KvOpKind::Noop:
    return;
  case KvOpKind::Put:
    Table[Op.Key] = Op.Value;
    return;
  case KvOpKind::Del:
    Table.erase(Op.Key);
    return;
  }
}

std::optional<uint32_t> KvState::get(uint32_t Key) const {
  auto It = Table.find(Key);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

//===----------------------------------------------------------------------===//
// ReplicatedKvStore
//===----------------------------------------------------------------------===//

KvClientObserver::~KvClientObserver() = default;

ReplicatedKvStore::ReplicatedKvStore(sim::Cluster &Cluster)
    : Cluster(Cluster) {
  Cluster.addApplyHook(
      [this](NodeId Node, size_t Index, const SimLogEntry &E) {
        onApply(Node, Index, E);
      });
}

void ReplicatedKvStore::onApply(NodeId Node, size_t Index,
                                const SimLogEntry &E) {
  KvState &State = Replicas[Node];
  if (E.Kind == raft::EntryKind::Method) {
    // Exactly-once: a command retried across failovers may occupy two
    // committed slots; only the first occurrence executes.
    bool Duplicate = E.ClientSeq != 0 &&
                     !AppliedSeqs[Node].insert(E.ClientSeq).second;
    if (!Duplicate)
      State.applyMethod(E.Method);
  }
  AppliedCount[Node] = Index;
  // Resolve barrier reads riding on this entry (encoded as a Noop put
  // whose ClientSeq maps into Reads via the Value field of the op).
  if (E.Kind != raft::EntryKind::Method)
    return;
  KvOp Op = decodeKvOp(E.Method);
  if (Op.Kind != KvOpKind::Noop || Op.Value == 0)
    return;
  auto It = Reads.find(Op.Value);
  if (It == Reads.end())
    return;
  PendingRead Read = std::move(It->second);
  Reads.erase(It);
  // The applying replica has every entry up to the barrier: its state
  // is the linearization point.
  auto Value = State.get(Read.Key);
  SimTime Latency = Cluster.queue().now() - Read.StartedAt;
  if (Observer)
    Observer->onReturn(Read.OpId, true, Value, Cluster.queue().now());
  Read.Done(true, Value, Latency);
}

void ReplicatedKvStore::put(
    uint32_t Key, uint32_t Value,
    std::function<void(bool, SimTime)> Done, SimTime MaxTriesUs) {
  KvOp Op{KvOpKind::Put, Key, Value};
  uint64_t OpId = NextOpId++;
  if (Observer)
    Observer->onInvoke(OpId, KvClientObserver::OpType::Put, Key, Value,
                       Cluster.queue().now());
  Cluster.submit(
      encodeKvOp(Op),
      [this, OpId, Done = std::move(Done)](bool Ok, SimTime Latency) {
        if (Observer)
          Observer->onReturn(OpId, Ok, std::nullopt,
                             Cluster.queue().now());
        if (Done)
          Done(Ok, Latency);
      },
      MaxTriesUs);
}

void ReplicatedKvStore::del(uint32_t Key,
                            std::function<void(bool, SimTime)> Done,
                            SimTime MaxTriesUs) {
  KvOp Op{KvOpKind::Del, Key, 0};
  uint64_t OpId = NextOpId++;
  if (Observer)
    Observer->onInvoke(OpId, KvClientObserver::OpType::Del, Key, 0,
                       Cluster.queue().now());
  Cluster.submit(
      encodeKvOp(Op),
      [this, OpId, Done = std::move(Done)](bool Ok, SimTime Latency) {
        if (Observer)
          Observer->onReturn(OpId, Ok, std::nullopt,
                             Cluster.queue().now());
        if (Done)
          Done(Ok, Latency);
      },
      MaxTriesUs);
}

void ReplicatedKvStore::get(
    uint32_t Key,
    std::function<void(bool, std::optional<uint32_t>, SimTime)> Done,
    SimTime MaxTriesUs) {
  uint64_t Seq = NextReadSeq++;
  uint64_t OpId = NextOpId++;
  if (Observer)
    Observer->onInvoke(OpId, KvClientObserver::OpType::Get, Key, 0,
                       Cluster.queue().now());
  Reads[Seq] =
      PendingRead{Key, std::move(Done), Cluster.queue().now(), OpId};
  // A no-op barrier whose Value field carries the read ticket.
  KvOp Barrier{KvOpKind::Noop, 0, static_cast<uint32_t>(Seq)};
  Cluster.submit(
      encodeKvOp(Barrier),
      [this, Seq](bool Ok, SimTime) {
        if (Ok)
          return; // onApply resolves the read.
        auto It = Reads.find(Seq);
        if (It == Reads.end())
          return;
        PendingRead Read = std::move(It->second);
        Reads.erase(It);
        if (Observer)
          Observer->onReturn(Read.OpId, false, std::nullopt,
                             Cluster.queue().now());
        Read.Done(false, std::nullopt, 0);
      },
      MaxTriesUs);
}

void ReplicatedKvStore::getFast(
    uint32_t Key,
    std::function<void(bool, std::optional<uint32_t>, SimTime)> Done,
    bool AtFollower, SimTime MaxTriesUs) {
  uint64_t OpId = NextOpId++;
  if (Observer)
    Observer->onInvoke(OpId, KvClientObserver::OpType::Get, Key, 0,
                       Cluster.queue().now());
  Cluster.read(
      [this, Key, OpId, Done = std::move(Done)](
          bool Ok, NodeId Server, size_t, SimTime Latency) {
        std::optional<uint32_t> Value;
        if (Ok)
          Value = Replicas[Server].get(Key);
        if (Observer)
          Observer->onReturn(OpId, Ok, Value, Cluster.queue().now());
        if (Done)
          Done(Ok, Value, Latency);
      },
      AtFollower, MaxTriesUs);
}

const KvState &ReplicatedKvStore::replica(NodeId Id) const {
  static const KvState Empty;
  auto It = Replicas.find(Id);
  return It == Replicas.end() ? Empty : It->second;
}

bool ReplicatedKvStore::replicasAgree() const {
  // Replicas at the same applied count must hold identical tables.
  std::map<size_t, const KvState *> ByCount;
  for (const auto &[Node, State] : Replicas) {
    size_t Count = AppliedCount.count(Node) ? AppliedCount.at(Node) : 0;
    auto [It, Fresh] = ByCount.emplace(Count, &State);
    if (!Fresh && !(*It->second == State))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// AdoKvClient
//===----------------------------------------------------------------------===//

bool AdoKvClient::hasActiveLeadership() const {
  CacheId Active = St->Tree.activeCache(Id);
  if (Active == InvalidCacheId)
    return false;
  return St->isLeader(Id, St->Tree.cache(Active).T);
}

bool AdoKvClient::call(const KvOp &Op) {
  // Fig. 2 (ADO): if (!pull()) return FAIL;
  if (!hasActiveLeadership()) {
    auto Choice = Oracle->choosePull(*Sem, *St, Id);
    if (!Choice)
      return false;
    Sem->pull(*St, Id, *Choice);
    if (!hasActiveLeadership())
      return false; // Election failed (non-quorum supporters).
  }
  // if (!invoke(["put","a",1])) return FAIL;
  if (!Sem->invoke(*St, Id, encodeKvOp(Op)))
    return false;
  CacheId Mine = St->Tree.activeCache(Id); // The MCache just invoked.
  // if (push()) return OK; else return FAIL;
  auto Choice = Oracle->choosePush(*Sem, *St, Id);
  if (!Choice)
    return false;
  CacheId Target = Choice->Target;
  size_t Before = St->Tree.size();
  Sem->push(*St, Id, *Choice);
  if (St->Tree.size() == Before)
    return false; // Non-quorum ack set: not committed.
  // Committed iff our method lies in the certified prefix, i.e. is an
  // ancestor-or-self of the push target (the oracle may certify only an
  // earlier prefix: a partial failure, Fig. 3f).
  return St->Tree.isAncestorOrSelf(Mine, Target);
}

bool AdoKvClient::callWithRetry(const KvOp &Op, unsigned Attempts) {
  for (unsigned I = 0; I != Attempts; ++I)
    if (call(Op))
      return true;
  return false;
}

KvState AdoKvClient::committedState() const {
  KvState State;
  for (CacheId Id : St->Tree.committedLog()) {
    const Cache &C = St->Tree.cache(Id);
    if (C.isMethod())
      State.applyMethod(C.Method);
  }
  return State;
}
