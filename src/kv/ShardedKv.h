//===- kv/ShardedKv.h - Sharded replicated KV store -----------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded face of the Fig. 2 KV store: the same put/del/get API,
/// but keys are spread across N consensus groups by the pool map. This
/// class is the *host* binding of the pure shard::ShardedKvClient — it
/// supplies the client's transport (server-side ingress checks against
/// the simulated pool, dispatch into per-group ReplicatedKvStores, map
/// refetches) and adds the history observer hookup the chaos harness
/// records cross-shard runs through.
///
/// Each data group keeps its own ReplicatedKvStore, so commit barriers,
/// exactly-once client sequences, and replica convergence all stay
/// group-local; only routing is global.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_KV_SHARDEDKV_H
#define ADORE_KV_SHARDEDKV_H

#include "kv/KvStore.h"
#include "shard/ShardedKvClient.h"
#include "sim/ShardedCluster.h"

#include <memory>
#include <vector>

namespace adore {
namespace kv {

/// Observer of the sharded client-visible operation lifecycle: the
/// single-group KvClientObserver contract extended with the placement
/// tags (shard, owning group under the routing map at invocation time)
/// the cross-shard history recorder needs.
class ShardedKvObserver {
public:
  using OpType = KvClientObserver::OpType;

  virtual ~ShardedKvObserver();

  virtual void onInvoke(uint64_t OpId, OpType Type, uint32_t Key,
                        uint32_t Value, uint32_t Shard, shard::GroupId Group,
                        sim::SimTime At) = 0;
  virtual void onReturn(uint64_t OpId, bool Ok,
                        std::optional<uint32_t> Value, sim::SimTime At) = 0;
};

/// Sharded SMR-style store over a simulated pool. One logical client:
/// ops are recorded once at this boundary no matter how many wrong-group
/// NACK retries they take underneath.
class ShardedKvStore {
public:
  explicit ShardedKvStore(sim::ShardedCluster &Pool);

  /// Per-routed-attempt budget handed to the owning group's store.
  void setOpTimeout(sim::SimTime TimeoutUs) { OpTimeoutUs = TimeoutUs; }

  /// Serve un-pinned reads through the lease-protected fast path
  /// (ReplicatedKvStore::getFast, at a follower) instead of the leader
  /// commit barrier. Only meaningful when the pool's groups run with the
  /// read tiers enabled; a fast read the group cannot prove safe comes
  /// back as a GroupReply::ReadNack, which the routing client answers by
  /// re-sending the read pinned to the leader. Default off: every legacy
  /// sharded run keeps the barrier-read path byte-identical.
  void setFollowerReads(bool On) { FollowerReads = On; }

  void put(uint32_t Key, uint32_t Value,
           std::function<void(bool Ok, sim::SimTime LatencyUs)> Done);
  void del(uint32_t Key,
           std::function<void(bool Ok, sim::SimTime LatencyUs)> Done);
  void get(uint32_t Key,
           std::function<void(bool Ok, std::optional<uint32_t> Value,
                              sim::SimTime LatencyUs)>
               Done);

  /// Installs the history observer (nullptr to detach). Not owned.
  void setObserver(ShardedKvObserver *O) { Observer = O; }

  /// The group-local store of data group \p G, for invariant checks.
  ReplicatedKvStore &groupStore(shard::GroupId G);

  /// True iff every group's replicas (at equal applied counts) agree.
  bool replicasAgree() const;

  /// Routing statistics of the underlying sans-I/O client.
  const shard::RouteStats &routeStats() const { return Client->stats(); }

private:
  /// Private scaffolding for the shared submit path.
  enum class OpKindTag : uint8_t { Put, Del, Get };

  void submit(OpKindTag Kind, uint32_t Key, uint32_t Value,
              std::function<void(bool, std::optional<uint32_t>,
                                 sim::SimTime)>
                  Done);

  sim::ShardedCluster &Pool;
  /// Indexed by GroupId; slot 0 (metadata group) stays empty.
  std::vector<std::unique_ptr<ReplicatedKvStore>> GroupStores;
  std::unique_ptr<shard::ShardedKvClient> Client;
  sim::SimTime OpTimeoutUs = 1500000;
  bool FollowerReads = false;
  uint64_t NextOpId = 1;
  ShardedKvObserver *Observer = nullptr;
};

} // namespace kv
} // namespace adore

#endif // ADORE_KV_SHARDEDKV_H
