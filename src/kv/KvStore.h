//===- kv/KvStore.h - Replicated key-value store application ---*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The application layer of the paper's running example (Section 2.2 /
/// Fig. 2): a distributed key-value store, in both styles the paper
/// contrasts:
///
///  - ReplicatedKvStore: the SMR-style client over the executable Raft
///    cluster — put("a", 1) is one opaque rpc_call that internally
///    retries elections and replication;
///  - AdoKvClient: the ADO-style three-step client over the Adore model
///    itself — pull() / invoke(["put","a",1]) / push(), each of which
///    may fail and is retried explicitly.
///
/// Methods are opaque identifiers at the protocol layer; the KV layer
/// packs its operations into the 64-bit MethodId:
/// [2 op bits | 31 key bits | 31 value bits].
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_KV_KVSTORE_H
#define ADORE_KV_KVSTORE_H

#include "adore/Oracle.h"
#include "sim/Cluster.h"

#include <functional>
#include <map>
#include <optional>
#include <set>

namespace adore {
namespace kv {

/// KV operation kinds packed into MethodId.
enum class KvOpKind : uint8_t {
  Noop = 0, ///< Barrier/no-op (also the leader's term-start entry).
  Put = 1,
  Del = 2,
};

/// A decoded KV operation.
struct KvOp {
  KvOpKind Kind = KvOpKind::Noop;
  uint32_t Key = 0;
  uint32_t Value = 0;
};

/// Packs \p Op into an opaque method id.
MethodId encodeKvOp(const KvOp &Op);

/// Unpacks a method id produced by encodeKvOp (Noop for id 0).
KvOp decodeKvOp(MethodId Method);

/// The deterministic state machine: applies committed KV operations in
/// order. One instance per replica.
class KvState {
public:
  /// Applies a decoded operation.
  void apply(const KvOp &Op);

  /// Applies an encoded method (protocol-layer convenience).
  void applyMethod(MethodId Method) { apply(decodeKvOp(Method)); }

  std::optional<uint32_t> get(uint32_t Key) const;
  size_t size() const { return Table.size(); }
  bool operator==(const KvState &RHS) const { return Table == RHS.Table; }

private:
  std::map<uint32_t, uint32_t> Table;
};

//===----------------------------------------------------------------------===//
// SMR-style store over the executable cluster
//===----------------------------------------------------------------------===//

/// Observer of the client-visible operation lifecycle: every put/del/get
/// reports an invocation when it is issued and a return when its Done
/// callback would fire. The chaos harness implements this to record
/// operation histories for linearizability checking; `Ok == false` on a
/// write means *indeterminate* (a retried command may still commit), not
/// "definitely did not happen".
class KvClientObserver {
public:
  enum class OpType : uint8_t { Put, Del, Get };

  virtual ~KvClientObserver();

  /// An operation begins. \p OpId is unique per store instance; \p Value
  /// is meaningful for Put only.
  virtual void onInvoke(uint64_t OpId, OpType Type, uint32_t Key,
                        uint32_t Value, sim::SimTime At) = 0;

  /// The operation returns to the client. \p Value carries the observed
  /// value for a successful Get and is nullopt otherwise.
  virtual void onReturn(uint64_t OpId, bool Ok,
                        std::optional<uint32_t> Value, sim::SimTime At) = 0;
};

/// The SMR-facade store of Fig. 2: opaque calls over a simulated Raft
/// cluster. Maintains one KvState per replica (fed by the cluster's
/// apply hook) and serves linearizable reads through a commit barrier.
/// Client commands carry a unique sequence number and replicas apply each
/// at most once, so a command that is retried across leader failovers
/// (and therefore may appear in the committed log twice) takes effect
/// exactly once — without this, at-least-once retries would make even
/// fault-free histories non-linearizable.
class ReplicatedKvStore {
public:
  explicit ReplicatedKvStore(sim::Cluster &Cluster);

  /// put(key, value): completes (in virtual time) once committed, or
  /// with Ok=false once \p MaxTriesUs elapses (outcome indeterminate).
  void put(uint32_t Key, uint32_t Value,
           std::function<void(bool Ok, sim::SimTime LatencyUs)> Done,
           sim::SimTime MaxTriesUs = 5000000);

  /// del(key).
  void del(uint32_t Key,
           std::function<void(bool Ok, sim::SimTime LatencyUs)> Done,
           sim::SimTime MaxTriesUs = 5000000);

  /// Linearizable get: a no-op barrier is committed, then the value is
  /// read from the replica state at the barrier point.
  void get(uint32_t Key,
           std::function<void(bool Ok, std::optional<uint32_t> Value,
                              sim::SimTime LatencyUs)>
               Done,
           sim::SimTime MaxTriesUs = 5000000);

  /// Linearizable get through the protocol read path (requires a read
  /// tier in the cluster's node options): no log append — the cluster
  /// confirms a safe index (ReadIndex round, lease fast path, or
  /// lease-protected follower read with \p AtFollower) and the value
  /// is served from the confirming node's replica, whose applied state
  /// covers that index by the time the read resolves. Ok=false means
  /// the read path exhausted its retries.
  void getFast(uint32_t Key,
               std::function<void(bool Ok, std::optional<uint32_t> Value,
                                  sim::SimTime LatencyUs)>
                   Done,
               bool AtFollower = false, sim::SimTime MaxTriesUs = 5000000);

  /// Installs the history observer (nullptr to detach). Not owned.
  void setObserver(KvClientObserver *O) { Observer = O; }

  /// Replica state for inspection (e.g. convergence checks in tests).
  const KvState &replica(NodeId Id) const;

  /// True iff all replicas with equal applied counts agree; tests drain
  /// the cluster first.
  bool replicasAgree() const;

private:
  void onApply(NodeId Node, size_t Index, const sim::SimLogEntry &E);

  sim::Cluster &Cluster;
  std::map<NodeId, KvState> Replicas;
  std::map<NodeId, size_t> AppliedCount;
  /// Per-replica set of client sequence numbers already applied; repeat
  /// occurrences of a retried command are skipped (exactly-once apply).
  /// Deterministic across replicas because all apply the same log.
  std::map<NodeId, std::set<uint64_t>> AppliedSeqs;
  /// Pending barrier reads keyed by an internal sequence.
  struct PendingRead {
    uint32_t Key;
    std::function<void(bool, std::optional<uint32_t>, sim::SimTime)> Done;
    sim::SimTime StartedAt;
    uint64_t OpId;
  };
  std::map<uint64_t, PendingRead> Reads;
  uint64_t NextReadSeq = 1;
  uint64_t NextOpId = 1;
  KvClientObserver *Observer = nullptr;
};

//===----------------------------------------------------------------------===//
// ADO-style client over the Adore model
//===----------------------------------------------------------------------===//

/// The three-step ADO client of Fig. 2 run directly against the Adore
/// abstract machine: pull to become leader, invoke the method, push to
/// commit — each step may fail, and the client retries. One AdoKvClient
/// per replica id; all clients share one AdoreState (the global abstract
/// object).
class AdoKvClient {
public:
  AdoKvClient(NodeId Id, const Semantics &Sem, AdoreState &Shared,
              OracleStrategy &Oracle)
      : Id(Id), Sem(&Sem), St(&Shared), Oracle(&Oracle) {}

  /// Fig. 2's ADO pseudocode: pull if not leader, invoke, push. Returns
  /// true once the method is committed; false when any step failed (the
  /// caller decides whether to retry).
  bool call(const KvOp &Op);

  /// Retries call() up to \p Attempts times.
  bool callWithRetry(const KvOp &Op, unsigned Attempts = 16);

  /// Folds the committed log into a KvState (what any client observes).
  KvState committedState() const;

  NodeId id() const { return Id; }

private:
  bool hasActiveLeadership() const;

  NodeId Id;
  const Semantics *Sem;
  AdoreState *St;
  OracleStrategy *Oracle;
};

} // namespace kv
} // namespace adore

#endif // ADORE_KV_KVSTORE_H
