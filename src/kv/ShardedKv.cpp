//===- kv/ShardedKv.cpp - Sharded replicated KV store -----------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "kv/ShardedKv.h"

#include <cassert>

using namespace adore;
using namespace adore::kv;
using adore::shard::GroupId;
using sim::SimTime;

ShardedKvObserver::~ShardedKvObserver() = default;

ShardedKvStore::ShardedKvStore(sim::ShardedCluster &Pool) : Pool(Pool) {
  GroupStores.resize(Pool.dataGroups() + 1);
  for (GroupId G = 1; G <= Pool.dataGroups(); ++G)
    GroupStores[G] = std::make_unique<ReplicatedKvStore>(Pool.group(G));

  shard::ShardedKvClient::Transport T;
  T.Perform = [this](const shard::RouteRequest &Req,
                     shard::ShardedKvClient::ReplyFn Done) {
    // Server-side admission first: a stale-routed request never reaches
    // the group's consensus path. The NACK costs one round trip.
    if (auto Nack =
            this->Pool.ingressCheck(Req.Group, Req.Shard, Req.MapGen)) {
      shard::GroupReply R;
      R.HasNack = true;
      R.Nack = *Nack;
      this->Pool.queue().scheduleAfter(
          this->Pool.options().MapFetchLatencyUs,
          [Done = std::move(Done), R] { Done(R); });
      return;
    }
    ReplicatedKvStore &Store = groupStore(Req.Group);
    KvOp Op = decodeKvOp(Req.Payload);
    if (Req.IsRead) {
      // Un-pinned reads may take the lease-protected fast path at a
      // follower; one the group cannot prove safe within the budget
      // comes back as a ReadNack, and the routing client re-sends it
      // with ReadAtLeader set — which lands in the barrier path below.
      if (this->FollowerReads && !Req.ReadAtLeader) {
        Store.getFast(
            Op.Key,
            [Done = std::move(Done)](bool Ok, std::optional<uint32_t> V,
                                     SimTime) {
              shard::GroupReply R;
              if (Ok) {
                R.Ok = true;
                R.HasValue = V.has_value();
                R.Value = V.value_or(0);
              } else {
                R.ReadNack = true;
              }
              Done(R);
            },
            /*AtFollower=*/true, OpTimeoutUs);
        return;
      }
      Store.get(
          Op.Key,
          [Done = std::move(Done)](bool Ok, std::optional<uint32_t> V,
                                   SimTime) {
            shard::GroupReply R;
            R.Ok = Ok;
            R.HasValue = V.has_value();
            R.Value = V.value_or(0);
            Done(R);
          },
          OpTimeoutUs);
      return;
    }
    auto Reply = [Done = std::move(Done)](bool Ok, SimTime) {
      shard::GroupReply R;
      R.Ok = Ok;
      Done(R);
    };
    if (Op.Kind == KvOpKind::Del)
      Store.del(Op.Key, std::move(Reply), OpTimeoutUs);
    else
      Store.put(Op.Key, Op.Value, std::move(Reply), OpTimeoutUs);
  };
  T.FetchMap = [this](shard::ShardedKvClient::MapFn Done) {
    this->Pool.fetchMap(std::move(Done));
  };
  T.Sleep = [this](uint64_t DelayUs, std::function<void()> Resume) {
    this->Pool.queue().scheduleAfter(DelayUs, std::move(Resume));
  };
  shard::BackoffOptions Backoff;
  Backoff.Seed = Pool.clientSeed();
  Client = std::make_unique<shard::ShardedKvClient>(Pool.committedMap(),
                                                    std::move(T), Backoff);
}

ReplicatedKvStore &ShardedKvStore::groupStore(GroupId G) {
  assert(G != shard::MetaGroupId && G < GroupStores.size() &&
         "not a data group");
  return *GroupStores[G];
}

bool ShardedKvStore::replicasAgree() const {
  for (const auto &Store : GroupStores)
    if (Store && !Store->replicasAgree())
      return false;
  return true;
}

void ShardedKvStore::submit(
    OpKindTag Kind, uint32_t Key, uint32_t Value,
    std::function<void(bool, std::optional<uint32_t>, SimTime)> Done) {
  uint64_t OpId = NextOpId++;
  SimTime Start = Pool.queue().now();
  const shard::PoolMap &Map = Client->map();
  if (Observer) {
    uint32_t Shard = shard::shardForKey(Key, Map.NumShards);
    auto Type = Kind == OpKindTag::Put   ? ShardedKvObserver::OpType::Put
                : Kind == OpKindTag::Del ? ShardedKvObserver::OpType::Del
                                         : ShardedKvObserver::OpType::Get;
    Observer->onInvoke(OpId, Type, Key, Value, Shard,
                       Map.groupForShard(Shard), Start);
  }
  KvOp Op;
  Op.Kind = Kind == OpKindTag::Put   ? KvOpKind::Put
            : Kind == OpKindTag::Del ? KvOpKind::Del
                                     : KvOpKind::Noop;
  Op.Key = Key;
  Op.Value = Value;
  Client->submit(
      Key, encodeKvOp(Op), Kind == OpKindTag::Get,
      [this, OpId, Start,
       Done = std::move(Done)](const shard::GroupReply &R) {
        SimTime Now = Pool.queue().now();
        std::optional<uint32_t> V;
        if (R.Ok && R.HasValue)
          V = R.Value;
        if (Observer)
          Observer->onReturn(OpId, R.Ok, V, Now);
        if (Done)
          Done(R.Ok, V, Now - Start);
      });
}

void ShardedKvStore::put(uint32_t Key, uint32_t Value,
                         std::function<void(bool, SimTime)> Done) {
  submit(OpKindTag::Put, Key, Value,
         [Done = std::move(Done)](bool Ok, std::optional<uint32_t>,
                                  SimTime Latency) {
           if (Done)
             Done(Ok, Latency);
         });
}

void ShardedKvStore::del(uint32_t Key,
                         std::function<void(bool, SimTime)> Done) {
  submit(OpKindTag::Del, Key, 0,
         [Done = std::move(Done)](bool Ok, std::optional<uint32_t>,
                                  SimTime Latency) {
           if (Done)
             Done(Ok, Latency);
         });
}

void ShardedKvStore::get(
    uint32_t Key,
    std::function<void(bool, std::optional<uint32_t>, SimTime)> Done) {
  submit(OpKindTag::Get, Key, 0, std::move(Done));
}
