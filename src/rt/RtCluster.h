//===- rt/RtCluster.h - Threaded cluster harness --------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A harness wiring several RtNode replicas to one in-process Bus, with
/// the shared bookkeeping real deployments get from clients and external
/// checkers: a first-apply-wins committed ledger, per-term leader
/// observation for election safety, and client helpers that retry
/// submissions until they observe commitment. Everything here runs on
/// real threads against the wall clock; determinism is NOT a goal of
/// this runtime (the simulator owns that) — safety under genuine
/// concurrency is.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_RTCLUSTER_H
#define ADORE_RT_RTCLUSTER_H

#include "rt/Bus.h"
#include "rt/RtNode.h"
#include "rt/Transport.h"
#include "store/NodeStore.h"
#include "support/Sync.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

namespace adore {
namespace rt {

/// Which Transport implementation an RtCluster (or sharded pool) wires
/// its nodes to when it owns the fabric itself.
enum class TransportKind : uint8_t {
  Bus, ///< In-process rt::Bus, synchronous delivery (the default).
  Tcp, ///< Loopback TCP via net::TcpTransport (epoll loop thread).
};

/// Knobs for an RtCluster run. Core timeouts default much faster than
/// the simulator's so smoke tests converge in tens of milliseconds.
struct RtClusterOptions {
  SchemeKind Scheme = SchemeKind::RaftSingleNode;
  size_t NumNodes = 3;
  /// Extra replicas beyond NumNodes, created but left out of the
  /// initial configuration (passive until a reconfig adopts them).
  /// Sharded pools draw migration targets from these.
  size_t NumSpares = 0;
  /// Node ids are IdBase+1 .. IdBase+NumNodes+NumSpares. A sharded pool
  /// gives each group a disjoint base (shard::groupIdBase), which is
  /// what makes frames on a shared bus group-tagged: the endpoint id
  /// itself names the group.
  NodeId IdBase = 0;
  /// The fabric the cluster creates when it owns one (SharedNet unset).
  TransportKind Transport = TransportKind::Bus;
  /// Attach the nodes to this caller-owned transport instead of an
  /// internal one; must outlive the cluster (Transport is then
  /// ignored). This is the rt multiplexing seam: N groups on one
  /// fabric, kept apart purely by disjoint endpoint ids.
  rt::Transport *SharedNet = nullptr;
  /// Host-side tuning applied to every node (inbox batch draining for
  /// WAL group commit).
  RtHostOptions Host;
  /// Prepended to every node's store directory ("g2/" makes node 2001
  /// persist under "g2/n2001"), so groups sharing one disk stay apart.
  std::string StoreDirPrefix;
  /// Observation tap called on every apply (same arguments as the
  /// internal hook, global node ids), OUTSIDE the cluster's locks — a
  /// sharded pool hangs its map state machine off the meta group here.
  std::function<void(NodeId, size_t, const core::LogEntry &)> OnApplyExtra;
  /// Observation tap for suspicion transitions (observer, peer,
  /// suspected-now), called from node worker threads outside the
  /// cluster's locks. Requires Node.EnableSuspicion to ever fire; the
  /// self-healing driver hangs its Healer off this.
  std::function<void(NodeId, NodeId, bool)> OnSuspicion;
  uint64_t Seed = 1;
  core::CoreOptions Node = fastNodeOptions();
  /// Back every node with a WAL+snapshot store on a shared in-memory
  /// fault-injecting disk; crash() then costs whatever StoreFaults says
  /// a power cut costs, and restart() recovers from the disk.
  bool DurableStore = false;
  store::MemVfsFaults StoreFaults;
  store::StoreOptions Store;
  /// With DurableStore: persist to this caller-owned Vfs (e.g. a
  /// PosixVfs over real files) instead of the internal fault-injecting
  /// MemVfs. crash() is then a pure fail-stop — a real disk keeps what
  /// it holds — and restart() recovers from it. Must outlive the
  /// cluster; StoreFaults is ignored.
  store::Vfs *ExternalDisk = nullptr;

  static const char *transportName(TransportKind K) {
    return K == TransportKind::Tcp ? "tcp" : "bus";
  }

  static core::CoreOptions fastNodeOptions() {
    core::CoreOptions O;
    O.ElectionTimeoutMinUs = 50000;
    O.ElectionTimeoutMaxUs = 100000;
    O.HeartbeatUs = 15000;
    return O;
  }
};

/// Creates an owned fabric of the given kind (rt::Bus or the TCP
/// backend); the seam every harness that owns its transport goes
/// through.
std::unique_ptr<Transport> makeTransport(TransportKind K);

/// Owns the bus, the nodes, and the cross-node observations.
class RtCluster {
public:
  explicit RtCluster(RtClusterOptions Opts);
  ~RtCluster();

  RtCluster(const RtCluster &) = delete;
  RtCluster &operator=(const RtCluster &) = delete;

  /// Starts every node's worker thread. Safe to race with stop().
  void start() ADORE_EXCLUDES(LifeMu);

  /// Stops and joins every node. Idempotent; called by the destructor.
  void stop() ADORE_EXCLUDES(LifeMu);

  size_t numNodes() const { return Nodes.size(); }

  /// All replica ids, initial members and spares alike (global ids,
  /// i.e. including IdBase).
  NodeSet universe() const;

  /// The configuration some node claiming leadership currently runs
  /// under, or the initial configuration if nobody leads. Advisory (the
  /// answer can be stale by the time it returns); migration drivers use
  /// it to pick the next reconfig candidate.
  Config currentConfig() const;

  /// Blocks until some live node reports itself leader, or \p TimeoutMs
  /// elapses. Returns the leader's id or InvalidNodeId.
  NodeId waitForLeader(uint64_t TimeoutMs) const;

  /// Submits \p Method with a fresh client sequence number, re-posting
  /// it (same sequence number — at-least-once, deduplicated by the
  /// ledger check) to rotating targets until it shows up committed or
  /// \p TimeoutMs elapses. Returns true on observed commitment.
  bool submitAndWait(MethodId Method, uint64_t TimeoutMs);

  /// Fire-and-forget client command with a caller-chosen sequence
  /// number: posted once to the node currently claiming leadership
  /// (round-robin fallback by \p Rotor), with NO commitment wait.
  /// Open-loop load generators track completion through OnApplyExtra
  /// by ClientSeq; caller-chosen sequence numbers must stay disjoint
  /// from submitAndWait's internal allocator (which counts up from 1).
  void submitAsync(MethodId Method, uint64_t ClientSeq, size_t Rotor = 0);

  /// Asks nodes to commit a membership change to \p NewConf; returns
  /// true once a Reconfig entry carrying it is observed committed.
  bool reconfigAndWait(const Config &NewConf, uint64_t TimeoutMs);

  /// Issues a linearizable read (requires a read tier in Opts.Node,
  /// e.g. Node.EnableReadIndex) and blocks until it resolves or
  /// \p TimeoutMs elapses. Targets the node currently claiming
  /// leadership, or — with \p AtFollower and EnableFollowerReads — a
  /// non-leader replica, falling back to the leader when the follower
  /// NACKs. Returns the safe index the read was served at, or nullopt.
  /// Every successful read is checked against the committed ledger
  /// size snapshotted before issue; a safe index below it is recorded
  /// as a stale-read violation.
  std::optional<size_t> readAndWait(uint64_t TimeoutMs,
                                    bool AtFollower = false);

  /// State-level fail-stop / recovery of one node (thread keeps
  /// running; see RtNode).
  void crash(NodeId Id);
  void restart(NodeId Id);

  /// Point-in-time status snapshot of one node (any thread, advisory).
  RtNodeStatus nodeStatus(NodeId Id) const;

  /// Post-stop core access for metrics aggregation (see
  /// RtNode::coreForInspection for the safety contract).
  const core::RaftCore &coreForInspection(NodeId Id) const;

  const ReconfigScheme &scheme() const { return *Scheme; }
  Config initialConfig() const { return InitialConf; }

  /// Number of entries in the shared committed ledger.
  size_t committedCount() const;

  /// Cross-thread safety violations observed while running (divergent
  /// applies at one index, two leaders in one term).
  std::vector<std::string> violations() const;

  /// Post-stop whole-cluster audit: every node's applied prefix must
  /// match the shared ledger, and (store-backed) no node may have
  /// observed a recovery mismatch. Call ONLY after stop(); appends to
  /// and returns the violation list.
  std::vector<std::string> checkFinalAgreement();

  /// Store-backed mode: per-node store counters summed cluster-wide.
  store::StoreStats storeStats() const;

private:
  void onApply(NodeId Node, size_t Index, const core::LogEntry &E)
      ADORE_EXCLUDES(ObsMu);
  void onLeader(NodeId Node, Time Term) ADORE_EXCLUDES(ObsMu);
  void onReadDone(NodeId Node, uint64_t ReadId, bool Ok, size_t Index)
      ADORE_EXCLUDES(ObsMu);
  bool confCommittedLocked(const Config &NewConf) const
      ADORE_REQUIRES(ObsMu);

  RtClusterOptions Opts;
  std::unique_ptr<ReconfigScheme> Scheme;
  Config InitialConf;
  /// Owned unless Opts.SharedNet points at a caller's transport (the
  /// sharded pool seam); Net is the one actually wired to the nodes.
  std::unique_ptr<Transport> OwnNet;
  Transport *Net;
  /// Declared before Nodes: stores must outlive the nodes holding
  /// pointers into them (destruction runs bottom-up, after stop()).
  std::unique_ptr<store::MemVfs> Disk;
  std::vector<std::unique_ptr<store::NodeStore>> Stores;
  std::vector<std::unique_ptr<RtNode>> Nodes;

  /// Serializes start()/stop(); node worker threads never take it, so
  /// stop() may join them while holding it. Never hold ObsMu across a
  /// lifecycle call: the workers' observation callbacks need ObsMu to
  /// drain.
  mutable sync::Mutex LifeMu;
  bool Running ADORE_GUARDED_BY(LifeMu) = false;

  mutable sync::Mutex ObsMu; ///< Guards everything below.
  mutable sync::CondVar ObsCv;
  std::map<size_t, core::LogEntry> Ledger
      ADORE_GUARDED_BY(ObsMu); ///< First apply at each index wins.
  std::set<uint64_t> CommittedSeqs
      ADORE_GUARDED_BY(ObsMu); ///< ClientSeq of committed methods.
  std::vector<Config> CommittedConfs
      ADORE_GUARDED_BY(ObsMu); ///< Committed reconfig targets.
  std::map<Time, std::set<NodeId>> LeadersByTerm ADORE_GUARDED_BY(ObsMu);
  std::vector<std::string> Violations ADORE_GUARDED_BY(ObsMu);
  uint64_t NextClientSeq ADORE_GUARDED_BY(ObsMu) = 1;
  /// Outcome of a resolved read: Ok plus the safe index it was served
  /// at. Keyed by the cluster-allocated ReadId; each attempt uses a
  /// fresh id so late answers from abandoned attempts stay distinct.
  struct ReadOutcome {
    bool Ok = false;
    size_t Index = 0;
  };
  std::map<uint64_t, ReadOutcome> ReadResults ADORE_GUARDED_BY(ObsMu);
  uint64_t NextReadId ADORE_GUARDED_BY(ObsMu) = 1;
};

} // namespace rt
} // namespace adore

#endif // ADORE_RT_RTCLUSTER_H
