//===- rt/RtNode.cpp - Real-time threaded host for the Raft core ------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/RtNode.h"

#include "rt/Wire.h"
#include "store/NodeStore.h"

#include <algorithm>
#include <vector>

using namespace adore;
using namespace adore::rt;

RtNode::RtNode(NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
               core::CoreOptions Opts, uint64_t Seed, Transport &Net,
               RtNodeHooks Hooks, store::NodeStore *Store, RtHostOptions Host)
    : Id(Id), Net(&Net), Hooks(std::move(Hooks)), Host(Host),
      Core(Id, Scheme, std::move(InitialConf), Opts, Seed),
      Epoch(Clock::now()), Store(Store) {
  // Adopt whatever the store's directory already holds, before the
  // worker thread exists (the core is fresh, so installing is legal).
  if (Store)
    recoverFromStore(/*CheckAgainstCore=*/false);
  Net.attach(Id, [this](std::string Frame) {
    enqueueFrame(std::move(Frame));
  });
}

void RtNode::recoverFromStore(bool CheckAgainstCore) {
  store::RecoveredState RS = Store->open();
  if (RS.Error) {
    // Unrecoverable directory: keep the in-memory state so the node can
    // proceed, but surface the mismatch — under the supported fault
    // model this must never happen.
    StoreMismatches.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (CheckAgainstCore) {
    // Persist-carrying batches fsync before any effect escapes, so only
    // deferred Commit records may be lost at a crash: recovered
    // term/vote/log must equal the in-memory copy exactly, and the
    // commit index may only lag.
    bool Mismatch = RS.Term != Core.term() || RS.Vote != Core.votedFor() ||
                    RS.Log != Core.log() ||
                    RS.CommitIndex > Core.commitIndex();
    if (Mismatch)
      StoreMismatches.fetch_add(1, std::memory_order_relaxed);
  }
  Core.installDurableState(RS.Term, RS.Vote, std::move(RS.Log),
                           RS.CommitIndex);
}

RtNode::~RtNode() {
  stop();
  // End the endpoint's transport lifetime before members die: an
  // asynchronous transport (TCP loop thread) may still hold buffered
  // frames for this id, and must stop invoking enqueueFrame now.
  Net->detach(Id);
}

void RtNode::start() {
  // LifeMu serializes whole lifecycle transitions; without it, a
  // start() racing a stop() could assign Worker while the stop was
  // joining the old thread (a data race on the std::thread object the
  // original lock scheme left unguarded — surfaced by annotating
  // Worker GUARDED_BY and letting the analysis reject the old code).
  sync::MutexLock Life(LifeMu);
  {
    sync::MutexLock Lock(Mu);
    if (Started)
      return;
    Started = true;
    Stopping = false;
  }
  Worker = std::thread([this] { run(); });
}

void RtNode::stop() {
  sync::MutexLock Life(LifeMu);
  {
    sync::MutexLock Lock(Mu);
    if (!Started)
      return;
    Stopping = true;
  }
  Cv.notifyAll();
  // Joining under LifeMu is safe: the worker never acquires it.
  if (Worker.joinable())
    Worker.join();
  sync::MutexLock Lock(Mu);
  Started = false;
}

void RtNode::enqueue(Item It) {
  {
    sync::MutexLock Lock(Mu);
    Inbox.push_back(std::move(It));
  }
  Cv.notifyAll();
}

void RtNode::enqueueFrame(std::string Frame) {
  Item It;
  It.K = Item::Kind::Frame;
  It.Frame = std::move(Frame);
  enqueue(std::move(It));
}

void RtNode::submit(MethodId Method, uint64_t ClientSeq) {
  Item It;
  It.K = Item::Kind::Submit;
  It.Method = Method;
  It.ClientSeq = ClientSeq;
  enqueue(std::move(It));
}

void RtNode::requestReconfig(Config NewConf) {
  Item It;
  It.K = Item::Kind::Reconfig;
  It.Conf = std::move(NewConf);
  enqueue(std::move(It));
}

void RtNode::read(uint64_t ReadId) {
  Item It;
  It.K = Item::Kind::Read;
  It.ReadId = ReadId;
  enqueue(std::move(It));
}

void RtNode::crash() {
  Item It;
  It.K = Item::Kind::Crash;
  enqueue(std::move(It));
}

void RtNode::restart() {
  Item It;
  It.K = Item::Kind::Restart;
  enqueue(std::move(It));
}

RtNodeStatus RtNode::status() const {
  sync::MutexLock Lock(StatusMu);
  return Cached;
}

uint64_t RtNode::malformedFrames() const {
  return Malformed.load(std::memory_order_relaxed);
}

uint64_t RtNode::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            Epoch)
          .count());
}

std::optional<RtNode::Clock::time_point> RtNode::nextDeadline() const {
  std::optional<Clock::time_point> Next;
  if (Election.Armed)
    Next = Election.At;
  if (Heartbeat.Armed && (!Next || Heartbeat.At < *Next))
    Next = Heartbeat.At;
  return Next;
}

void RtNode::run() {
  dispatch(Core.start());
  sync::MutexLock Lock(Mu);
  for (;;) {
    if (Stopping)
      return;
    if (Inbox.empty()) {
      std::optional<Clock::time_point> Wake = nextDeadline();
      if (Wake) {
        if (Clock::now() < *Wake) {
          Cv.waitUntil(Mu, *Wake);
          continue; // Re-check stop flag and inbox first.
        }
        // A deadline is due: fire outside the inbox lock.
        Lock.unlock();
        fireDueTimers();
        Lock.lock();
        continue;
      }
      Cv.wait(Mu);
      continue;
    }
    // Drain a batch: consecutive core-step items (frames, submits,
    // reconfigs) coalesce into ONE effect batch, so a store-backed
    // host's persist pre-pass fsyncs once for the whole burst (group
    // commit). Crash/restart are barriers and run alone, preserving
    // their store side-effect ordering. MaxInboxBatch=1 reproduces the
    // legacy one-item-one-dispatch schedule exactly.
    Item First = std::move(Inbox.front());
    Inbox.pop_front();
    if (!isBatchable(First)) {
      Lock.unlock();
      processBarrier(First);
    } else {
      std::vector<Item> Batch;
      Batch.push_back(std::move(First));
      while (Batch.size() < Host.MaxInboxBatch && !Inbox.empty() &&
             isBatchable(Inbox.front())) {
        Batch.push_back(std::move(Inbox.front()));
        Inbox.pop_front();
      }
      Lock.unlock();
      core::Effects Effs;
      for (Item &It : Batch)
        step(It, Effs);
      dispatch(std::move(Effs));
    }
    // Timers may have come due while processing; handle them before
    // sleeping again.
    fireDueTimers();
    Lock.lock();
  }
}

bool RtNode::isBatchable(const Item &It) {
  return It.K == Item::Kind::Frame || It.K == Item::Kind::Submit ||
         It.K == Item::Kind::Reconfig || It.K == Item::Kind::Read;
}

void RtNode::step(Item &It, core::Effects &Out) {
  switch (It.K) {
  case Item::Kind::Frame: {
    core::Msg M;
    if (!decodeMsg(It.Frame, M)) {
      Malformed.fetch_add(1, std::memory_order_relaxed);
      return; // Malformed frame: dropped like a corrupt packet.
    }
    core::Effects Step = Core.onMessage(M, nowUs());
    for (core::Effect &E : Step)
      Out.push_back(std::move(E));
    return;
  }
  case Item::Kind::Submit:
    Core.submit(It.Method, It.ClientSeq, Out);
    return;
  case Item::Kind::Reconfig:
    Core.requestReconfig(It.Conf, Out);
    return;
  case Item::Kind::Read:
    // Lease expiry is checked lazily against the wall clock here; the
    // heartbeat timer drives renewals and probe retransmission.
    Core.readQuery(It.ReadId, nowUs(), Out);
    return;
  case Item::Kind::Crash:
  case Item::Kind::Restart:
    // Barriers never reach here; run() routes them to processBarrier.
    return;
  }
}

void RtNode::processBarrier(Item &It) {
  switch (It.K) {
  case Item::Kind::Crash:
    dispatch(Core.crash());
    if (Store)
      Store->crash(); // Power cut: the fault model mangles the directory.
    return;
  case Item::Kind::Restart:
    // Restarting a node that never crashed is a no-op; only a crashed
    // core may have durable state re-installed.
    if (Store && Core.isCrashed())
      recoverFromStore(/*CheckAgainstCore=*/true);
    dispatch(Core.restart());
    return;
  case Item::Kind::Frame:
  case Item::Kind::Submit:
  case Item::Kind::Reconfig:
  case Item::Kind::Read:
    // Batchable items never reach here; run() routes them to step().
    return;
  }
}

void RtNode::fireDueTimers() {
  // At most one firing per timer per pass; re-arms take a fresh
  // deadline, so the loop in run() converges.
  Clock::time_point Now = Clock::now();
  if (Election.Armed && Election.At <= Now) {
    Election.Armed = false;
    dispatch(Core.onTimer(core::TimerId::Election, Election.Gen, nowUs()));
  }
  if (Heartbeat.Armed && Heartbeat.At <= Now) {
    Heartbeat.Armed = false;
    dispatch(Core.onTimer(core::TimerId::Heartbeat, Heartbeat.Gen, nowUs()));
  }
}

void RtNode::dispatch(core::Effects Effs) {
  // Persist-before-act: the core emits Persist at the END of a step's
  // batch (after the Sends it must gate), so a store-backed host
  // flushes the whole durable delta up front — nothing below,
  // especially no Send, may escape before the state backing it is on
  // disk. One fsync covers the whole batch (group commit).
  if (Store && std::any_of(Effs.begin(), Effs.end(), [](const core::Effect &E) {
        return E.K == core::Effect::Kind::Persist;
      })) {
    Store->persistFrom(Core);
    Store->sync();
  }
  for (core::Effect &E : Effs) {
    // The switch enumerates every Effect::Kind with no default: adding
    // a kind without deciding what this host does with it is a compile
    // error under -Werror=switch, not a silently dropped effect.
    switch (E.K) {
    case core::Effect::Kind::Send:
      Net->post(E.M.To, encodeMsg(E.M));
      break;
    case core::Effect::Kind::SetTimer: {
      Deadline &D =
          E.Timer == core::TimerId::Election ? Election : Heartbeat;
      D.Armed = true;
      D.Gen = E.TimerGen;
      D.At = Clock::now() + std::chrono::microseconds(E.DelayUs);
      break;
    }
    case core::Effect::Kind::CancelTimer:
      (E.Timer == core::TimerId::Election ? Election : Heartbeat).Armed =
          false;
      break;
    case core::Effect::Kind::Apply:
      if (Hooks.OnApply)
        Hooks.OnApply(Id, E.Index, E.Entry);
      break;
    case core::Effect::Kind::CommitAdvanced:
      // Deferred durability: the commit record rides the next sync
      // barrier; losing it at a crash is safe (recovery re-derives
      // commits from the quorum).
      if (Store)
        Store->noteCommit(E.Index);
      break;
    case core::Effect::Kind::Persist:
      // Handled by the pre-pass above. Without a store, crash is
      // state-level and the core preserves durable fields by fiat.
      break;
    case core::Effect::Kind::LeaderElected:
      if (Hooks.OnLeader)
        Hooks.OnLeader(Id, E.Term);
      break;
    case core::Effect::Kind::ReplicaSuspected:
      if (Hooks.OnSuspicion)
        Hooks.OnSuspicion(Id, E.Peer, /*Suspected=*/true);
      break;
    case core::Effect::Kind::ReplicaRecovered:
      if (Hooks.OnSuspicion)
        Hooks.OnSuspicion(Id, E.Peer, /*Suspected=*/false);
      break;
    case core::Effect::Kind::ReadReady:
      if (Hooks.OnReadDone)
        Hooks.OnReadDone(Id, E.ReadId, /*Ok=*/true, E.Index);
      break;
    case core::Effect::Kind::ReadFailed:
      if (Hooks.OnReadDone)
        Hooks.OnReadDone(Id, E.ReadId, /*Ok=*/false, 0);
      break;
    }
  }
  publishStatus();
}

void RtNode::publishStatus() {
  RtNodeStatus S;
  S.Role = Core.role();
  S.Term = Core.term();
  S.CommitIndex = Core.commitIndex();
  S.LogSize = Core.logSize();
  S.Crashed = Core.isCrashed();
  S.Passive = Core.isPassive();
  S.Conf = Core.config();
  sync::MutexLock Lock(StatusMu);
  Cached = S;
}
