//===- rt/ShardedRt.cpp - Multi-group pool on the rt runtime ----------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/ShardedRt.h"

#include "support/Rng.h"

#include <chrono>

using namespace adore;
using namespace adore::rt;

ShardedRtCluster::ShardedRtCluster(ShardedRtOptions O)
    : Opts(std::move(O)), Net(makeTransport(Opts.Group.Transport)) {
  Committed = shard::makeUniformPoolMap(
      static_cast<uint32_t>(Opts.Groups), Opts.NumShards,
      static_cast<uint32_t>(Opts.Members), static_cast<uint32_t>(Opts.Spares),
      static_cast<uint32_t>(Opts.MetaMembers));

  // One master seed stream, forked per group in group order (meta
  // first), mirroring the simulator's ShardedCluster.
  Rng Master(Opts.Group.Seed);
  for (shard::GroupId G = 0; G <= static_cast<shard::GroupId>(Opts.Groups);
       ++G) {
    RtClusterOptions GO = Opts.Group;
    GO.IdBase = shard::groupIdBase(G);
    GO.SharedNet = Net.get();
    GO.Seed = Master.next();
    GO.StoreDirPrefix = "g" + std::to_string(G) + "/";
    if (G == shard::MetaGroupId) {
      GO.NumNodes = Opts.MetaMembers;
      GO.NumSpares = 0;
      GO.OnApplyExtra = [this](NodeId, size_t I, const core::LogEntry &E) {
        onMetaApply(I, E);
      };
    } else {
      GO.NumNodes = Opts.Members;
      GO.NumSpares = Opts.Spares;
      // Data groups keep the caller's tap (the meta group's slot is
      // taken by the pool-map state machine above): open-loop load
      // generators track completion through it.
      GO.OnApplyExtra = Opts.Group.OnApplyExtra;
    }
    GroupClusters.push_back(std::make_unique<RtCluster>(GO));
  }
}

ShardedRtCluster::~ShardedRtCluster() { stop(); }

void ShardedRtCluster::start() {
  for (auto &C : GroupClusters)
    C->start();
}

void ShardedRtCluster::stop() {
  for (auto &C : GroupClusters)
    C->stop();
}

bool ShardedRtCluster::waitForAllLeaders(uint64_t TimeoutMs) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  for (auto &C : GroupClusters) {
    auto Now = std::chrono::steady_clock::now();
    if (Now >= Deadline)
      return false;
    uint64_t LeftMs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count());
    if (C->waitForLeader(LeftMs) == InvalidNodeId)
      return false;
  }
  return true;
}

shard::PoolMap ShardedRtCluster::committedMap() const {
  sync::MutexLock Lock(MapMu);
  return Committed;
}

uint64_t ShardedRtCluster::mapChangesCommitted() const {
  sync::MutexLock Lock(MapMu);
  return MapChanges;
}

std::vector<std::string> ShardedRtCluster::mapViolations() const {
  sync::MutexLock Lock(MapMu);
  return MapViolationsVec;
}

std::optional<shard::WrongGroupNack>
ShardedRtCluster::ingressCheck(shard::GroupId G, uint32_t Shard,
                               uint64_t ClientGen) const {
  sync::MutexLock Lock(MapMu);
  if (Committed.groupForShard(Shard) != G || ClientGen < Committed.Generation)
    return shard::WrongGroupNack{Committed.Generation};
  return std::nullopt;
}

bool ShardedRtCluster::proposeMap(const shard::PoolMap &NewMap,
                                  uint64_t TimeoutMs) {
  MethodId Ticket;
  {
    sync::MutexLock Lock(MapMu);
    if (!NewMap.valid() || NewMap.Generation != Committed.Generation + 1)
      return false;
    Ticket = NextTicket++;
    Proposals[Ticket] = NewMap;
  }
  if (!meta().submitAndWait(Ticket, TimeoutMs))
    return false;
  // The apply tap runs before the cluster's commitment bookkeeping, so
  // by the time submitAndWait observed the commit the ticket is
  // normally already decided; the wait below only covers the window
  // where a *different* replica's apply satisfied the ledger first.
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  sync::MutexLock Lock(MapMu);
  while (Decided.find(Ticket) == Decided.end()) {
    auto Retry =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(40);
    if (MapCv.waitUntil(MapMu, Retry) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= Deadline)
      break;
  }
  auto It = Decided.find(Ticket);
  return It != Decided.end() && It->second;
}

void ShardedRtCluster::onMetaApply(size_t Index, const core::LogEntry &E) {
  if (E.Kind != raft::EntryKind::Method || E.Method == 0)
    return;
  sync::MutexLock Lock(MapMu);
  // First apply anywhere decides the ticket: every replica applies in
  // index order, so the first occurrence of any index is in order too.
  if (Index <= MetaIndexSeen)
    return;
  MetaIndexSeen = Index;
  auto It = Proposals.find(E.Method);
  if (It == Proposals.end())
    return;
  const shard::PoolMap &M = It->second;
  bool Install = M.valid() && M.Generation == Committed.Generation + 1;
  if (Install) {
    if (M.Generation <= Committed.Generation)
      MapViolationsVec.push_back(
          "pool map generation not monotone at meta index " +
          std::to_string(Index));
    Committed = M;
    ++MapChanges;
  }
  Decided[E.Method] = Install;
  MapCv.notifyAll();
}
