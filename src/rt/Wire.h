//===- rt/Wire.h - Wire-format serialization of core::Msg -----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-time runtime's wire format: a little-endian, length-framed
/// binary encoding of core::Msg (entries and their configurations
/// included). Messages cross the in-process Bus as byte strings only —
/// the same serialize/deserialize boundary a socket transport would
/// impose — so the runtime exercises a true wire format rather than
/// passing shared objects, and a malformed frame is a decode error, not
/// undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_WIRE_H
#define ADORE_RT_WIRE_H

#include "core/RaftCore.h"

#include <string>

namespace adore {
namespace rt {

/// Serializes \p M into a self-delimiting byte string.
std::string encodeMsg(const core::Msg &M);

/// Parses \p Bytes into \p Out. Returns false (leaving \p Out
/// unspecified) on truncated, oversized, or trailing-garbage input.
bool decodeMsg(const std::string &Bytes, core::Msg &Out);

} // namespace rt
} // namespace adore

#endif // ADORE_RT_WIRE_H
