//===- rt/ShardedRt.h - Multi-group pool on the rt runtime ----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded multi-group pool: a metadata RtCluster (group 0)
/// replicating the pool map, plus N data RtClusters, all multiplexed
/// over one wire Bus. Groups stay apart on the shared bus purely by
/// disjoint endpoint ids (shard::groupIdBase), the same scheme the
/// simulator's ShardedCluster uses on its shared event queue — so a
/// frame's destination id is its group tag and no frame format changes.
///
/// The pool map is the meta group's state machine: proposeMap() assigns
/// a ticket MethodId, records the proposed map, and submits the ticket
/// through the meta log; the first apply of the ticket anywhere decides
/// it, installing the map iff its generation is exactly committed+1
/// (CAS — concurrent proposals lose and report failure). Servers check
/// ingress against the committed map and NACK stale-routed requests
/// with the current generation, which is what drives the routing
/// client's refetch loop.
///
/// Store-backed mode gives every group its own disk namespace: group G
/// persists under "gG/n<id>" (and each internally-created MemVfs is
/// per-group anyway), so no two groups ever share a WAL or snapshot
/// directory.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_SHARDEDRT_H
#define ADORE_RT_SHARDEDRT_H

#include "rt/RtCluster.h"
#include "shard/PoolMap.h"
#include "shard/ShardedKvClient.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace adore {
namespace rt {

/// Knobs for a threaded sharded pool.
struct ShardedRtOptions {
  /// Template applied to every group (scheme, core timeouts, durable
  /// store, transport kind). NumNodes/NumSpares/IdBase/SharedNet/
  /// StoreDirPrefix/OnApplyExtra are overwritten per group; Seed seeds
  /// the pool-wide master stream.
  RtClusterOptions Group;
  /// Data consensus groups (the metadata group is extra).
  size_t Groups = 2;
  /// Shards the keyspace splits into (jump hash).
  uint32_t NumShards = 16;
  /// Initial members per data group.
  size_t Members = 3;
  /// Spare (initially passive) replicas per data group — migration
  /// targets.
  size_t Spares = 2;
  /// Metadata group size.
  size_t MetaMembers = 3;
};

/// Owns the shared bus, the meta and data clusters, and the committed
/// pool map. Thread-safe where noted; lifecycle from one thread.
class ShardedRtCluster {
public:
  explicit ShardedRtCluster(ShardedRtOptions Opts);
  ~ShardedRtCluster();

  ShardedRtCluster(const ShardedRtCluster &) = delete;
  ShardedRtCluster &operator=(const ShardedRtCluster &) = delete;

  void start();
  void stop();

  size_t dataGroups() const { return GroupClusters.size() - 1; }
  const ShardedRtOptions &options() const { return Opts; }

  /// Group 0 is the metadata group; 1..dataGroups() are data groups.
  RtCluster &group(shard::GroupId G) { return *GroupClusters[G]; }
  RtCluster &meta() { return *GroupClusters[shard::MetaGroupId]; }

  /// Blocks until every group (meta included) has a leader, or the
  /// budget runs out; returns whether all converged.
  bool waitForAllLeaders(uint64_t TimeoutMs);

  /// Snapshot of the committed pool map (any thread).
  shard::PoolMap committedMap() const ADORE_EXCLUDES(MapMu);

  /// Proposes \p NewMap through the meta group's log and waits for its
  /// ticket to be decided. Returns true iff the map was installed (its
  /// generation was exactly committed+1 when the ticket applied).
  bool proposeMap(const shard::PoolMap &NewMap, uint64_t TimeoutMs)
      ADORE_EXCLUDES(MapMu);

  /// Server-side routing validation against the committed map: NACK
  /// with the current generation iff the shard is not owned by \p G
  /// under the current map or the client's stamp is behind it.
  std::optional<shard::WrongGroupNack>
  ingressCheck(shard::GroupId G, uint32_t Shard, uint64_t ClientGen) const
      ADORE_EXCLUDES(MapMu);

  /// Committed map changes beyond the initial map (any thread).
  uint64_t mapChangesCommitted() const ADORE_EXCLUDES(MapMu);

  /// Pool-map invariant violations observed while running (generation
  /// ever non-monotone, invalid map installed). Empty means healthy.
  std::vector<std::string> mapViolations() const ADORE_EXCLUDES(MapMu);

private:
  void onMetaApply(size_t Index, const core::LogEntry &E)
      ADORE_EXCLUDES(MapMu);

  ShardedRtOptions Opts;
  /// Declared before the clusters: every node posts to it until stop().
  /// Kind chosen by Opts.Group.Transport (bus or loopback TCP).
  std::unique_ptr<Transport> Net;
  /// Slot 0 = metadata group.
  std::vector<std::unique_ptr<RtCluster>> GroupClusters;

  mutable sync::Mutex MapMu;
  mutable sync::CondVar MapCv;
  shard::PoolMap Committed ADORE_GUARDED_BY(MapMu);
  std::map<MethodId, shard::PoolMap> Proposals ADORE_GUARDED_BY(MapMu);
  /// Ticket -> decided outcome (installed or lost the generation CAS).
  std::map<MethodId, bool> Decided ADORE_GUARDED_BY(MapMu);
  MethodId NextTicket ADORE_GUARDED_BY(MapMu) = 1;
  size_t MetaIndexSeen ADORE_GUARDED_BY(MapMu) = 0;
  uint64_t MapChanges ADORE_GUARDED_BY(MapMu) = 0;
  std::vector<std::string> MapViolationsVec ADORE_GUARDED_BY(MapMu);
};

} // namespace rt
} // namespace adore

#endif // ADORE_RT_SHARDEDRT_H
