//===- rt/RtCluster.cpp - Threaded cluster harness --------------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/RtCluster.h"

#include "net/TcpTransport.h"
#include "support/Rng.h"

#include <chrono>
#include <sstream>

using namespace adore;
using namespace adore::rt;

namespace {

std::chrono::steady_clock::time_point deadlineIn(uint64_t Ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
}

} // namespace

std::unique_ptr<Transport> rt::makeTransport(TransportKind K) {
  switch (K) {
  case TransportKind::Bus:
    return std::make_unique<Bus>();
  case TransportKind::Tcp:
    return std::make_unique<net::TcpTransport>();
  }
  return std::make_unique<Bus>();
}

RtCluster::RtCluster(RtClusterOptions Opts)
    : Opts(Opts), Scheme(makeScheme(Opts.Scheme)),
      OwnNet(Opts.SharedNet ? nullptr : makeTransport(Opts.Transport)),
      Net(Opts.SharedNet ? Opts.SharedNet : OwnNet.get()) {
  size_t Total = Opts.NumNodes + Opts.NumSpares;
  NodeSet Members;
  for (size_t I = 1; I <= Opts.NumNodes; ++I)
    Members.insert(Opts.IdBase + static_cast<NodeId>(I));
  InitialConf = Config(Members);

  Rng SeedRng(Opts.Seed);
  RtNodeHooks Hooks;
  Hooks.OnApply = [this](NodeId N, size_t I, const core::LogEntry &E) {
    // The extra tap runs first and lock-free: cluster bookkeeping takes
    // ObsMu, and a sharded pool's map state machine must be free to
    // take its own locks without ordering against ours.
    if (this->Opts.OnApplyExtra)
      this->Opts.OnApplyExtra(N, I, E);
    onApply(N, I, E);
  };
  Hooks.OnLeader = [this](NodeId N, Time T) { onLeader(N, T); };
  Hooks.OnSuspicion = [this](NodeId N, NodeId Peer, bool SuspectedNow) {
    if (this->Opts.OnSuspicion)
      this->Opts.OnSuspicion(N, Peer, SuspectedNow);
  };
  Hooks.OnReadDone = [this](NodeId N, uint64_t Id, bool Ok, size_t Index) {
    onReadDone(N, Id, Ok, Index);
  };
  if (Opts.DurableStore) {
    store::Vfs *Backing = Opts.ExternalDisk;
    if (!Backing) {
      Disk = std::make_unique<store::MemVfs>(Opts.Seed ^ 0xD15CFA017ULL,
                                             Opts.StoreFaults);
      Backing = Disk.get();
    }
    for (size_t I = 1; I <= Total; ++I) {
      auto St = std::make_unique<store::NodeStore>(
          *Backing,
          Opts.StoreDirPrefix + "n" + std::to_string(Opts.IdBase + I),
          Opts.Store);
      // Only the internal MemVfs models power loss; an external disk
      // keeps everything it was handed (crash is a pure fail-stop).
      if (!Opts.ExternalDisk) {
        store::NodeStore *Ptr = St.get();
        St->setCrashHook([this, Ptr] { Disk->crashDir(Ptr->dir() + "/"); });
      }
      Stores.push_back(std::move(St));
    }
  }
  for (size_t I = 1; I <= Total; ++I) {
    store::NodeStore *St = Opts.DurableStore ? Stores[I - 1].get() : nullptr;
    Nodes.push_back(std::make_unique<RtNode>(
        Opts.IdBase + static_cast<NodeId>(I), *Scheme, InitialConf,
        Opts.Node, SeedRng.next(), *Net, Hooks, St, Opts.Host));
  }
}

NodeSet RtCluster::universe() const {
  NodeSet S;
  for (const auto &N : Nodes)
    S.insert(N->id());
  return S;
}

Config RtCluster::currentConfig() const {
  for (const auto &N : Nodes) {
    RtNodeStatus S = N->status();
    if (!S.Crashed && S.Role == core::Role::Leader)
      return S.Conf;
  }
  return InitialConf;
}

store::StoreStats RtCluster::storeStats() const {
  store::StoreStats Sum;
  for (const auto &St : Stores)
    Sum.accumulate(St->stats());
  return Sum;
}

RtCluster::~RtCluster() { stop(); }

void RtCluster::start() {
  // LifeMu makes cluster lifecycle transitions atomic: the old unlocked
  // Running flag let a start() racing a stop() interleave node
  // starts/joins arbitrarily (annotating Running GUARDED_BY is what
  // forced this). Joining under LifeMu is fine — workers only ever
  // need ObsMu.
  sync::MutexLock Lock(LifeMu);
  if (Running)
    return;
  Running = true;
  for (auto &N : Nodes)
    N->start();
}

void RtCluster::stop() {
  sync::MutexLock Lock(LifeMu);
  if (!Running)
    return;
  for (auto &N : Nodes)
    N->stop();
  Running = false;
}

NodeId RtCluster::waitForLeader(uint64_t TimeoutMs) const {
  auto Deadline = deadlineIn(TimeoutMs);
  for (;;) {
    for (const auto &N : Nodes) {
      RtNodeStatus S = N->status();
      if (!S.Crashed && S.Role == core::Role::Leader)
        return N->id();
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      return InvalidNodeId;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool RtCluster::submitAndWait(MethodId Method, uint64_t TimeoutMs) {
  uint64_t Seq;
  {
    sync::MutexLock Lock(ObsMu);
    Seq = NextClientSeq++;
  }
  auto Deadline = deadlineIn(TimeoutMs);
  size_t Rotor = 0;
  for (;;) {
    // Prefer the node that currently claims leadership; fall back to
    // round-robin so a stale claim cannot wedge the client.
    RtNode *Target = nullptr;
    for (const auto &N : Nodes) {
      RtNodeStatus S = N->status();
      if (!S.Crashed && S.Role == core::Role::Leader) {
        Target = N.get();
        break;
      }
    }
    if (!Target)
      Target = Nodes[Rotor++ % Nodes.size()].get();
    // At-least-once with a stable sequence number: re-sending after an
    // unobserved commit is harmless because commitment is keyed by Seq.
    Target->submit(Method, Seq);

    // Open-coded predicate wait (rather than the wait_until overload
    // taking a lambda): the predicate reads ObsMu-guarded state, and a
    // lambda body is outside the lexical scope the thread-safety
    // analysis can check against the held capability.
    sync::MutexLock Lock(ObsMu);
    auto Retry = deadlineIn(40);
    while (CommittedSeqs.count(Seq) == 0) {
      if (ObsCv.waitUntil(ObsMu, Retry) == std::cv_status::timeout)
        break;
    }
    if (CommittedSeqs.count(Seq) != 0)
      return true;
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
  }
}

void RtCluster::submitAsync(MethodId Method, uint64_t ClientSeq,
                            size_t Rotor) {
  RtNode *Target = nullptr;
  for (const auto &N : Nodes) {
    RtNodeStatus S = N->status();
    if (!S.Crashed && S.Role == core::Role::Leader) {
      Target = N.get();
      break;
    }
  }
  if (!Target)
    Target = Nodes[Rotor % Nodes.size()].get();
  Target->submit(Method, ClientSeq);
}

bool RtCluster::reconfigAndWait(const Config &NewConf, uint64_t TimeoutMs) {
  auto Deadline = deadlineIn(TimeoutMs);
  size_t Rotor = 0;
  for (;;) {
    RtNode *Target = nullptr;
    for (const auto &N : Nodes) {
      RtNodeStatus S = N->status();
      if (!S.Crashed && S.Role == core::Role::Leader) {
        Target = N.get();
        break;
      }
    }
    if (!Target)
      Target = Nodes[Rotor++ % Nodes.size()].get();
    Target->requestReconfig(NewConf);

    sync::MutexLock Lock(ObsMu);
    auto Retry = deadlineIn(40);
    while (!confCommittedLocked(NewConf)) {
      if (ObsCv.waitUntil(ObsMu, Retry) == std::cv_status::timeout)
        break;
    }
    if (confCommittedLocked(NewConf))
      return true;
    if (std::chrono::steady_clock::now() >= Deadline)
      return false;
  }
}

std::optional<size_t> RtCluster::readAndWait(uint64_t TimeoutMs,
                                             bool AtFollower) {
  auto Deadline = deadlineIn(TimeoutMs);
  size_t Rotor = 0;
  for (;;) {
    // Pick the target: the node claiming leadership, or (follower
    // reads) some live non-leader; the leader's identity also feeds
    // the fallback below.
    RtNode *Leader = nullptr;
    RtNode *Follower = nullptr;
    for (const auto &N : Nodes) {
      RtNodeStatus S = N->status();
      if (S.Crashed)
        continue;
      if (S.Role == core::Role::Leader && !Leader)
        Leader = N.get();
      else if (S.Role != core::Role::Leader && !Follower)
        Follower = N.get();
    }
    RtNode *Target = AtFollower && Follower ? Follower : Leader;
    if (!Target)
      Target = Nodes[Rotor++ % Nodes.size()].get();

    uint64_t ReadId;
    size_t LedgerLb;
    {
      sync::MutexLock Lock(ObsMu);
      ReadId = NextReadId++;
      // Snapshot BEFORE issuing: everything committed by now must be
      // visible to a linearizable read that starts after now.
      LedgerLb = Ledger.size();
    }
    Target->read(ReadId);

    sync::MutexLock Lock(ObsMu);
    auto Retry = deadlineIn(40);
    while (ReadResults.count(ReadId) == 0) {
      if (ObsCv.waitUntil(ObsMu, Retry) == std::cv_status::timeout)
        break;
    }
    auto It = ReadResults.find(ReadId);
    if (It != ReadResults.end()) {
      ReadOutcome R = It->second;
      ReadResults.erase(It);
      if (R.Ok) {
        if (R.Index < LedgerLb) {
          std::ostringstream OS;
          OS << "stale read: served at index " << R.Index << " but "
             << LedgerLb << " entries were committed before issue";
          Violations.push_back(OS.str());
        }
        return R.Index;
      }
      // ReadFailed: a follower NACK (wrong leader / lease lapsed) or a
      // leader losing its role mid-read. Fall back to the leader on
      // the next attempt, like the retry-at-leader client policy.
      AtFollower = false;
    }
    if (std::chrono::steady_clock::now() >= Deadline)
      return std::nullopt;
  }
}

bool RtCluster::confCommittedLocked(const Config &NewConf) const {
  for (const Config &C : CommittedConfs)
    if (C == NewConf)
      return true;
  return false;
}

void RtCluster::crash(NodeId Id) {
  for (auto &N : Nodes)
    if (N->id() == Id)
      N->crash();
}

void RtCluster::restart(NodeId Id) {
  for (auto &N : Nodes)
    if (N->id() == Id)
      N->restart();
}

RtNodeStatus RtCluster::nodeStatus(NodeId Id) const {
  for (const auto &N : Nodes)
    if (N->id() == Id)
      return N->status();
  return RtNodeStatus();
}

const core::RaftCore &RtCluster::coreForInspection(NodeId Id) const {
  for (const auto &N : Nodes)
    if (N->id() == Id)
      return N->coreForInspection();
  return Nodes.front()->coreForInspection();
}

size_t RtCluster::committedCount() const {
  sync::MutexLock Lock(ObsMu);
  return Ledger.size();
}

std::vector<std::string> RtCluster::violations() const {
  sync::MutexLock Lock(ObsMu);
  return Violations;
}

void RtCluster::onApply(NodeId Node, size_t Index, const core::LogEntry &E) {
  sync::MutexLock Lock(ObsMu);
  auto It = Ledger.find(Index);
  if (It == Ledger.end()) {
    Ledger.emplace(Index, E);
    if (E.Kind == raft::EntryKind::Method && E.ClientSeq != 0)
      CommittedSeqs.insert(E.ClientSeq);
    if (E.Kind == raft::EntryKind::Reconfig)
      CommittedConfs.push_back(E.Conf);
  } else if (It->second != E) {
    std::ostringstream OS;
    OS << "divergent apply at index " << Index << ": node " << Node
       << " applied a different entry than first committed";
    Violations.push_back(OS.str());
  }
  ObsCv.notifyAll();
}

void RtCluster::onLeader(NodeId Node, Time Term) {
  sync::MutexLock Lock(ObsMu);
  auto &Set = LeadersByTerm[Term];
  Set.insert(Node);
  if (Set.size() > 1) {
    std::ostringstream OS;
    OS << "election safety violated: " << Set.size() << " leaders in term "
       << Term;
    Violations.push_back(OS.str());
  }
  ObsCv.notifyAll();
}

void RtCluster::onReadDone(NodeId, uint64_t ReadId, bool Ok, size_t Index) {
  sync::MutexLock Lock(ObsMu);
  ReadResults[ReadId] = ReadOutcome{Ok, Index};
  ObsCv.notifyAll();
}

std::vector<std::string> RtCluster::checkFinalAgreement() {
  sync::MutexLock Lock(ObsMu);
  for (const auto &N : Nodes) {
    if (uint64_t M = N->storeMismatches()) {
      std::ostringstream OS;
      OS << "node " << N->id() << " observed " << M
         << " store recovery mismatch(es): disk state diverged from the "
         << "in-memory copy";
      Violations.push_back(OS.str());
    }
  }
  for (const auto &N : Nodes) {
    const core::RaftCore &C = N->coreForInspection();
    for (size_t I = 1; I <= C.commitIndex(); ++I) {
      auto It = Ledger.find(I);
      if (It == Ledger.end())
        continue; // Ledger only sees entries somebody applied.
      if (C.entry(I) != It->second) {
        std::ostringstream OS;
        OS << "final log of node " << C.id() << " disagrees with ledger at "
           << "index " << I;
        Violations.push_back(OS.str());
      }
    }
  }
  return Violations;
}
