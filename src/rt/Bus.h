//===- rt/Bus.h - In-process message bus ----------------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal thread-safe in-process message bus: nodes register a
/// delivery handler once at setup, then any thread posts serialized
/// frames to a node id. The bus carries opaque byte strings only (see
/// rt/Wire.h), mirroring a datagram transport; frames to unknown ids are
/// silently dropped, like packets to a dead host.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_BUS_H
#define ADORE_RT_BUS_H

#include "support/Ids.h"
#include "support/Sync.h"

#include <functional>
#include <map>
#include <string>

namespace adore {
namespace rt {

/// Byte-oriented point-to-point bus. attach() all handlers before any
/// post() traffic starts; handlers must be internally thread-safe (they
/// run on the posting thread).
class Bus {
public:
  using Handler = std::function<void(std::string Frame)>;

  /// Registers the delivery handler for \p Id, replacing any previous
  /// one.
  void attach(NodeId Id, Handler H) {
    sync::MutexLock Lock(Mu);
    Handlers[Id] = std::move(H);
  }

  /// Delivers \p Frame to \p To; drops it if nobody is attached.
  void post(NodeId To, std::string Frame) {
    const Handler *H = nullptr;
    {
      sync::MutexLock Lock(Mu);
      auto It = Handlers.find(To);
      if (It != Handlers.end())
        H = &It->second;
    }
    // Handlers are never detached while traffic flows, so the pointer
    // stays valid past the lock; invoking outside it keeps bus and
    // inbox lock scopes disjoint.
    if (H)
      (*H)(std::move(Frame));
  }

private:
  sync::Mutex Mu;
  std::map<NodeId, Handler> Handlers ADORE_GUARDED_BY(Mu);
};

} // namespace rt
} // namespace adore

#endif // ADORE_RT_BUS_H
