//===- rt/Bus.h - In-process message bus ----------------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal thread-safe in-process transport: nodes register a
/// delivery handler, then any thread posts serialized frames to a node
/// id and the handler runs synchronously on the posting thread. The bus
/// carries opaque byte strings only (see rt/Wire.h), mirroring a
/// datagram transport; frames to unknown ids are silently dropped, like
/// packets to a dead host.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_BUS_H
#define ADORE_RT_BUS_H

#include "rt/Transport.h"
#include "support/Ids.h"
#include "support/Sync.h"

#include <map>
#include <string>
#include <utility>

namespace adore {
namespace rt {

/// Byte-oriented point-to-point bus; the in-process Transport
/// implementation. Handlers run on the posting thread and must be
/// internally thread-safe.
class Bus final : public Transport {
public:
  void attach(NodeId Id, Handler H) override {
    sync::MutexLock Lock(Mu);
    Handlers[Id] = std::move(H);
  }

  void detach(NodeId Id) override {
    sync::MutexLock Lock(Mu);
    Handlers.erase(Id);
  }

  /// Delivers \p Frame to \p To; drops it if nobody is attached. The
  /// handler is copied out under the lock: a pointer into Handlers
  /// would dangle if a concurrent attach()/detach() touched the entry
  /// between unlock and invocation. Invoking outside the lock keeps bus
  /// and inbox lock scopes disjoint.
  void post(NodeId To, std::string Frame) override {
    Handler H;
    {
      sync::MutexLock Lock(Mu);
      auto It = Handlers.find(To);
      if (It != Handlers.end())
        H = It->second;
    }
    if (H)
      H(std::move(Frame));
  }

private:
  sync::Mutex Mu;
  std::map<NodeId, Handler> Handlers ADORE_GUARDED_BY(Mu);
};

} // namespace rt
} // namespace adore

#endif // ADORE_RT_BUS_H
