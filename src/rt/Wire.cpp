//===- rt/Wire.cpp - Wire-format serialization of core::Msg -----------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Message framing over the shared little-endian codec (core/Codec.h).
// The same putEntry/entry routines also lay down WAL records in
// src/store, so a log entry's bytes are identical on the wire and on
// disk.
//
//===----------------------------------------------------------------------===//

#include "rt/Wire.h"

#include "core/Codec.h"

#include <cstdint>

using namespace adore;
using namespace adore::rt;

std::string rt::encodeMsg(const core::Msg &M) {
  std::string Out;
  codec::putU8(Out, static_cast<uint8_t>(M.K));
  codec::putU32(Out, M.From);
  codec::putU32(Out, M.To);
  codec::putU64(Out, M.Term);
  codec::putU64(Out, M.LastLogTerm);
  codec::putU64(Out, M.LastLogIndex);
  codec::putU8(Out, M.TransferElection ? 1 : 0);
  codec::putU8(Out, M.Granted ? 1 : 0);
  codec::putU64(Out, M.PrevIndex);
  codec::putU64(Out, M.PrevTerm);
  codec::putU64(Out, M.LeaderCommit);
  codec::putU8(Out, M.Success ? 1 : 0);
  codec::putU64(Out, M.MatchIndex);
  codec::putU64(Out, M.Entries.size());
  for (const core::LogEntry &E : M.Entries)
    codec::putEntry(Out, E);
  codec::putU64(Out, M.SnapIndex);
  codec::putU64(Out, M.SnapTerm);
  codec::putU64(Out, M.Offset);
  codec::putU8(Out, M.Done ? 1 : 0);
  codec::putBytes(Out, M.Chunk);
  // Appended at the tail so every pre-read field keeps its offset (the
  // golden-frame corpus and RtTest's count-offset probe rely on that).
  codec::putU64(Out, M.ReadRound);
  return Out;
}

bool rt::decodeMsg(const std::string &Bytes, core::Msg &Out) {
  codec::Cursor C{Bytes};
  uint8_t Kind = C.u8();
  if (!C.Ok ||
      Kind > static_cast<uint8_t>(core::Msg::Kind::ReadIndexReply))
    return false;
  Out.K = static_cast<core::Msg::Kind>(Kind);
  Out.From = C.u32();
  Out.To = C.u32();
  Out.Term = C.u64();
  Out.LastLogTerm = C.u64();
  Out.LastLogIndex = C.u64();
  Out.TransferElection = C.u8() != 0;
  Out.Granted = C.u8() != 0;
  Out.PrevIndex = C.u64();
  Out.PrevTerm = C.u64();
  Out.LeaderCommit = C.u64();
  Out.Success = C.u8() != 0;
  Out.MatchIndex = C.u64();
  uint64_t N = C.u64();
  if (!C.Ok || N > codec::MaxEntries)
    return false;
  Out.Entries.clear();
  Out.Entries.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    core::LogEntry E;
    if (!C.entry(E))
      return false;
    Out.Entries.push_back(std::move(E));
  }
  Out.SnapIndex = C.u64();
  Out.SnapTerm = C.u64();
  Out.Offset = C.u64();
  Out.Done = C.u8() != 0;
  if (!C.bytes(Out.Chunk))
    return false;
  Out.ReadRound = C.u64();
  return C.done();
}
