//===- rt/Wire.cpp - Wire-format serialization of core::Msg -----------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Wire.h"

#include <cstdint>

using namespace adore;
using namespace adore::rt;

namespace {

/// Sanity bounds: a frame claiming more than this is malformed, not big.
constexpr uint64_t MaxEntries = 1 << 20;
constexpr uint64_t MaxSetSize = 1 << 16;

void putU8(std::string &Out, uint8_t V) {
  Out.push_back(static_cast<char>(V));
}

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    putU8(Out, static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    putU8(Out, static_cast<uint8_t>(V >> (8 * I)));
}

void putNodeSet(std::string &Out, const NodeSet &S) {
  putU64(Out, S.size());
  for (NodeId N : S)
    putU32(Out, N);
}

void putConfig(std::string &Out, const Config &C) {
  putNodeSet(Out, C.Members);
  putNodeSet(Out, C.Extra);
  putU8(Out, C.HasExtra ? 1 : 0);
  putU64(Out, C.Param);
}

void putEntry(std::string &Out, const core::LogEntry &E) {
  putU64(Out, E.Term);
  putU8(Out, static_cast<uint8_t>(E.Kind));
  putU64(Out, E.Method);
  putConfig(Out, E.Conf);
  putU64(Out, E.ClientSeq);
}

/// Bounds-checked little-endian reader over a byte string.
struct Cursor {
  const std::string &Bytes;
  size_t Pos = 0;
  bool Ok = true;

  uint8_t u8() {
    if (Pos + 1 > Bytes.size()) {
      Ok = false;
      return 0;
    }
    return static_cast<uint8_t>(Bytes[Pos++]);
  }

  uint32_t u32() {
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(u8()) << (8 * I);
    return V;
  }

  uint64_t u64() {
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(u8()) << (8 * I);
    return V;
  }

  bool nodeSet(NodeSet &S) {
    uint64_t N = u64();
    if (!Ok || N > MaxSetSize)
      return Ok = false;
    S.clear();
    for (uint64_t I = 0; I != N && Ok; ++I)
      S.insert(u32());
    return Ok;
  }

  bool config(Config &C) {
    if (!nodeSet(C.Members) || !nodeSet(C.Extra))
      return false;
    C.HasExtra = u8() != 0;
    C.Param = u64();
    return Ok;
  }

  bool entry(core::LogEntry &E) {
    E.Term = u64();
    uint8_t Kind = u8();
    if (!Ok || Kind > static_cast<uint8_t>(raft::EntryKind::Reconfig))
      return Ok = false;
    E.Kind = static_cast<raft::EntryKind>(Kind);
    E.Method = u64();
    if (!config(E.Conf))
      return false;
    E.ClientSeq = u64();
    return Ok;
  }
};

} // namespace

std::string rt::encodeMsg(const core::Msg &M) {
  std::string Out;
  putU8(Out, static_cast<uint8_t>(M.K));
  putU32(Out, M.From);
  putU32(Out, M.To);
  putU64(Out, M.Term);
  putU64(Out, M.LastLogTerm);
  putU64(Out, M.LastLogIndex);
  putU8(Out, M.TransferElection ? 1 : 0);
  putU8(Out, M.Granted ? 1 : 0);
  putU64(Out, M.PrevIndex);
  putU64(Out, M.PrevTerm);
  putU64(Out, M.LeaderCommit);
  putU8(Out, M.Success ? 1 : 0);
  putU64(Out, M.MatchIndex);
  putU64(Out, M.Entries.size());
  for (const core::LogEntry &E : M.Entries)
    putEntry(Out, E);
  return Out;
}

bool rt::decodeMsg(const std::string &Bytes, core::Msg &Out) {
  Cursor C{Bytes};
  uint8_t Kind = C.u8();
  if (!C.Ok || Kind > static_cast<uint8_t>(core::Msg::Kind::TimeoutNow))
    return false;
  Out.K = static_cast<core::Msg::Kind>(Kind);
  Out.From = C.u32();
  Out.To = C.u32();
  Out.Term = C.u64();
  Out.LastLogTerm = C.u64();
  Out.LastLogIndex = C.u64();
  Out.TransferElection = C.u8() != 0;
  Out.Granted = C.u8() != 0;
  Out.PrevIndex = C.u64();
  Out.PrevTerm = C.u64();
  Out.LeaderCommit = C.u64();
  Out.Success = C.u8() != 0;
  Out.MatchIndex = C.u64();
  uint64_t N = C.u64();
  if (!C.Ok || N > MaxEntries)
    return false;
  Out.Entries.clear();
  Out.Entries.reserve(N);
  for (uint64_t I = 0; I != N; ++I) {
    core::LogEntry E;
    if (!C.entry(E))
      return false;
    Out.Entries.push_back(std::move(E));
  }
  return C.Ok && C.Pos == Bytes.size();
}
