//===- rt/RtNode.h - Real-time threaded host for the Raft core -*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-time host for core::RaftCore: one dedicated thread owns the
/// core exclusively and is the only code that ever touches it, so the
/// core itself needs no locks. All input — wire frames from the Bus,
/// client commands, admin reconfigs, crash/restart control — lands in a
/// mutex-protected inbox the thread drains in arrival order; the core's
/// SetTimer effects become steady_clock deadlines the thread sleeps
/// toward (condition-variable wait_until), and its Send effects are
/// serialized through rt/Wire.h and posted to the bus.
///
/// Crash here is *state-level* fail-stop, matching the simulator: the
/// thread keeps running but the core discards volatile state and ignores
/// input until restart, which mirrors a process that lost memory but
/// kept its disk.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_RTNODE_H
#define ADORE_RT_RTNODE_H

#include "core/RaftCore.h"
#include "rt/Transport.h"
#include "support/Sync.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <optional>
#include <thread>

namespace adore {

namespace store {
class NodeStore;
} // namespace store

namespace rt {

/// Host callbacks; both run on the node's thread and must be
/// thread-safe against other nodes' threads.
struct RtNodeHooks {
  std::function<void(NodeId, size_t, const core::LogEntry &)> OnApply;
  std::function<void(NodeId, Time)> OnLeader;
  /// Leader-observed liveness transition: (observer, peer, suspected).
  /// Fires only with core::CoreOptions::EnableSuspicion; the rt heal
  /// driver subscribes.
  std::function<void(NodeId, NodeId, bool)> OnSuspicion;
  /// Read outcome: (node, ReadId, ok, safe index). On ok the node's
  /// applied state machine has reached the safe index, so serving the
  /// read from this replica is linearizable. Fires only when a read
  /// tier (core::CoreOptions::EnableReadIndex/...) is on.
  std::function<void(NodeId, uint64_t, bool, size_t)> OnReadDone;
};

/// Host-side tuning, orthogonal to core::CoreOptions.
struct RtHostOptions {
  /// Max consecutive inbox items (frames / submits / reconfigs) drained
  /// and stepped through the core as ONE effect batch. A store-backed
  /// host fsyncs once per dispatched batch, so raising this makes one
  /// WAL sync cover a whole pipelined burst of appends (group commit).
  /// 1 = legacy one-item-one-dispatch behavior. Crash/restart items
  /// never coalesce; they are batch barriers.
  size_t MaxInboxBatch = 1;
};

/// Lock-free-readable snapshot of a node, refreshed by its thread after
/// every step.
struct RtNodeStatus {
  core::Role Role = core::Role::Follower;
  Time Term = 0;
  size_t CommitIndex = 0;
  size_t LogSize = 0;
  bool Crashed = false;
  bool Passive = false;
  /// The configuration the core currently runs under; advisory by the
  /// time anyone reads it, like every other field here.
  Config Conf;
};

/// One threaded replica.
class RtNode {
public:
  /// \p Store, when non-null, makes persistence real: the node adopts
  /// whatever the store's directory holds at construction, flushes the
  /// WAL before acting on any Persist-carrying effect batch, powers the
  /// disk down on crash, and recovers from it on restart (cross-checking
  /// the result against the in-memory copy).
  RtNode(NodeId Id, const ReconfigScheme &Scheme, Config InitialConf,
         core::CoreOptions Opts, uint64_t Seed, Transport &Net,
         RtNodeHooks Hooks, store::NodeStore *Store = nullptr,
         RtHostOptions Host = {});
  ~RtNode();

  RtNode(const RtNode &) = delete;
  RtNode &operator=(const RtNode &) = delete;

  /// Spawns the worker thread and starts the core. Idempotent; safe to
  /// race with stop() (LifeMu serializes lifecycle transitions).
  void start() ADORE_EXCLUDES(LifeMu, Mu);

  /// Stops and joins the worker thread. Idempotent.
  void stop() ADORE_EXCLUDES(LifeMu, Mu);

  NodeId id() const { return Id; }

  /// Enqueues a serialized frame from the bus (any thread).
  void enqueueFrame(std::string Frame);

  /// Enqueues a client command (any thread). Acceptance is observable
  /// only through commitment — like a real network client's.
  void submit(MethodId Method, uint64_t ClientSeq);

  /// Enqueues an admin membership-change request (any thread).
  void requestReconfig(Config NewConf);

  /// Enqueues a linearizable read (any thread); the outcome arrives via
  /// RtNodeHooks::OnReadDone with the same host-chosen \p ReadId.
  void read(uint64_t ReadId);

  /// State-level fail-stop / recovery (any thread).
  void crash();
  void restart();

  /// Point-in-time status snapshot (any thread).
  RtNodeStatus status() const;

  /// Count of bus frames that failed wire decoding (any thread).
  uint64_t malformedFrames() const;

  /// Store-backed mode: restarts whose recovered state diverged from
  /// the in-memory copy, or whose directory was unrecoverable (any
  /// thread). Always 0 in in-memory mode.
  uint64_t storeMismatches() const {
    return StoreMismatches.load(std::memory_order_relaxed);
  }

  /// Direct read access to the hosted core. Safe ONLY while the worker
  /// thread is not running (before start() or after stop()); used by
  /// end-of-run whole-cluster checks.
  const core::RaftCore &coreForInspection() const { return Core; }

private:
  struct Item {
    enum class Kind : uint8_t {
      Frame,
      Submit,
      Reconfig,
      Read,
      Crash,
      Restart
    };
    Kind K = Kind::Frame;
    std::string Frame;
    MethodId Method = 0;
    uint64_t ClientSeq = 0;
    uint64_t ReadId = 0;
    Config Conf;
  };

  using Clock = std::chrono::steady_clock;

  void run();
  void enqueue(Item It);
  uint64_t nowUs() const;
  /// True for items that may coalesce into one effect batch; false for
  /// crash/restart barriers.
  static bool isBatchable(const Item &It);
  /// Steps one batchable item through the core, appending its effects.
  void step(Item &It, core::Effects &Out);
  /// Runs one crash/restart barrier item (its own dispatch inside).
  void processBarrier(Item &It);
  void fireDueTimers();
  void dispatch(core::Effects Effs);
  void publishStatus();
  /// Store recovery + install into the (crashed or fresh) core; see the
  /// ctor comment. Worker thread (or pre-start construction) only.
  void recoverFromStore(bool CheckAgainstCore);

  /// One armed core timer mapped onto the steady clock. Worker-thread
  /// only.
  struct Deadline {
    bool Armed = false;
    uint64_t Gen = 0;
    Clock::time_point At;
  };

  std::optional<Clock::time_point> nextDeadline() const;

  NodeId Id;
  Transport *Net;
  RtNodeHooks Hooks;
  RtHostOptions Host;
  core::RaftCore Core; ///< Worker-thread only once start()ed.
  Clock::time_point Epoch;

  Deadline Election;  ///< Worker-thread only.
  Deadline Heartbeat; ///< Worker-thread only.

  /// Serializes start()/stop() end to end: the worker thread never
  /// takes it, so stop() may join while holding it, and a start() racing
  /// a stop() can no longer observe (or clobber) a half-torn-down
  /// Worker. Ordered before Mu: lifecycle code acquires LifeMu first.
  mutable sync::Mutex LifeMu;
  mutable sync::Mutex Mu ADORE_ACQUIRED_AFTER(LifeMu);
  sync::CondVar Cv;
  std::deque<Item> Inbox ADORE_GUARDED_BY(Mu);
  bool Stopping ADORE_GUARDED_BY(Mu) = false;
  bool Started ADORE_GUARDED_BY(Mu) = false;

  mutable sync::Mutex StatusMu;
  RtNodeStatus Cached ADORE_GUARDED_BY(StatusMu);

  std::atomic<uint64_t> Malformed{0};
  std::atomic<uint64_t> StoreMismatches{0};
  store::NodeStore *Store = nullptr; ///< Worker-thread only once started.

  std::thread Worker ADORE_GUARDED_BY(LifeMu);
};

} // namespace rt
} // namespace adore

#endif // ADORE_RT_RTNODE_H
