//===- rt/Transport.h - Abstract byte transport seam ----------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport seam of the real-time runtime: a byte-oriented,
/// datagram-style point-to-point fabric. Endpoints attach a delivery
/// handler under a NodeId, any thread posts opaque serialized frames
/// (see rt/Wire.h) to a NodeId, and frames to ids nobody is attached
/// under are silently dropped — like packets to a dead host. Delivery
/// is best-effort and asynchronous; a returned post() says nothing
/// about arrival.
///
/// Implementations: rt::Bus (in-process, synchronous delivery on the
/// posting thread) and net::TcpTransport (loopback TCP with an epoll
/// loop, length-framed streams, reconnect-on-drop). Hosts (RtNode)
/// program against this interface only, so the whole rt/chaos/bench
/// stack runs unmodified over either fabric.
///
/// Contract for implementations:
///  - attach(Id, H) replaces any previous handler for Id; the handler
///    must be invokable from arbitrary threads until detach(Id) (or the
///    transport's destruction) returns.
///  - detach(Id) ends delivery to Id: posts that observe the detach
///    drop their frames. A post already past its handler lookup may
///    still complete concurrently, so callers must keep the handler's
///    target alive until all posting threads have quiesced (hosts stop
///    every worker before tearing down any endpoint).
///  - post(To, Frame) never blocks on the receiver; per (sender,
///    receiver) pair, frames that do arrive arrive in post() order.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RT_TRANSPORT_H
#define ADORE_RT_TRANSPORT_H

#include "support/Ids.h"

#include <functional>
#include <string>

namespace adore {
namespace rt {

/// Abstract point-to-point frame transport; see the file comment for
/// the endpoint-lifecycle and delivery contract.
class Transport {
public:
  using Handler = std::function<void(std::string Frame)>;

  virtual ~Transport() = default;

  /// Registers the delivery handler for \p Id, replacing any previous
  /// one. Handlers must be internally thread-safe.
  virtual void attach(NodeId Id, Handler H) = 0;

  /// Unregisters \p Id's handler; see the file comment for the
  /// quiescence caveat. Detaching an unknown id is a no-op.
  virtual void detach(NodeId Id) = 0;

  /// Posts \p Frame toward \p To, best-effort; drops it if nobody is
  /// attached under \p To.
  virtual void post(NodeId To, std::string Frame) = 0;
};

} // namespace rt
} // namespace adore

#endif // ADORE_RT_TRANSPORT_H
