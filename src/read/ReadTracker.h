//===- read/ReadTracker.h - Client-side read routing policy -----*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sans-I/O client half of the read protocol: allocates read ids,
/// chooses which replica a fresh read should target under the active
/// tier (leader, or round-robin across followers when the tier permits
/// follower reads), and owns the NACK fallback policy — a follower
/// that answers "not leader / lease expired" sends the read back to
/// the leader exactly once before the attempt is declared failed.
///
/// Like shard/ShardedKvClient, the tracker never talks to a network:
/// hosts feed it outcomes and ask it where to go next, so the whole
/// retry policy is deterministic and unit-testable with scripted
/// replies, and the sim and rt clients share one routing brain.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_READ_READTRACKER_H
#define ADORE_READ_READTRACKER_H

#include "read/ReadPath.h"
#include "support/Ids.h"

#include <cstdint>
#include <vector>

namespace adore {
namespace read {

/// Monotone counters describing the tracker's life so far.
struct ReadStats {
  uint64_t Issued = 0;        ///< Reads begun.
  uint64_t ServedAtLeader = 0;
  uint64_t ServedAtFollower = 0;
  uint64_t RetriedAtLeader = 0; ///< Follower NACK -> leader fallback.
  uint64_t Failed = 0;          ///< Exhausted the fallback too.
};

/// Where the next attempt of a read should go.
struct ReadTarget {
  NodeId Node = 0;
  bool AtLeader = true;
};

class ReadTracker {
public:
  explicit ReadTracker(ReadTier Tier) : Tier(Tier) {}

  ReadTier tier() const { return Tier; }

  /// Allocates a fresh read id and picks its first target: the leader,
  /// unless the tier allows follower reads and \p Members contains a
  /// non-leader replica, in which case followers are visited
  /// round-robin (spreading read load is the whole point of tier 3).
  ReadTarget begin(uint64_t &ReadId, NodeId Leader,
                   const std::vector<NodeId> &Members);

  /// Follower answered with a NACK (wrong leader or lease lapsed).
  /// Returns the leader-retry target exactly once per read; a second
  /// failure of the same read returns false and counts it as failed.
  bool onNack(uint64_t ReadId, NodeId Leader, ReadTarget &Retry);

  /// Read completed at its target.
  void onServed(uint64_t ReadId, bool AtLeader);

  /// Read failed outright (leader lost leadership mid-read, crash).
  void onFailed(uint64_t ReadId);

  const ReadStats &stats() const { return Stats; }

  /// Reads issued but not yet resolved (for drain checks in tests).
  size_t inFlight() const { return Pending.size(); }

private:
  struct PendingRead {
    uint64_t ReadId = 0;
    bool RetriedAtLeader = false;
  };

  /// Erases \p ReadId from Pending; returns false if unknown (stale
  /// duplicate outcome — hosts may deliver late answers after a
  /// fallback already resolved the read).
  bool resolve(uint64_t ReadId, PendingRead &Out);

  ReadTier Tier;
  uint64_t NextReadId = 0;
  size_t NextFollower = 0; ///< Round-robin cursor over Members.
  std::vector<PendingRead> Pending;
  ReadStats Stats;
};

} // namespace read
} // namespace adore

#endif // ADORE_READ_READTRACKER_H
