//===- read/ReadPath.h - Linearizable read tier selection -------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read-path configuration surface: one enum naming the three
/// escalating linearizable-read tiers the core implements, plus the
/// translation from a tier choice into the core::CoreOptions knobs that
/// realize it. Hosts (sim, rt, chaos, bench) pick a tier; this header
/// is the single place that knows which core switches a tier implies,
/// so a host can never enable follower reads without the lease they
/// depend on, or a lease without the ReadIndex machinery underneath.
///
/// Tier ladder (each includes everything below it):
///
///   Off           reads go through the log like writes (baseline).
///   ReadIndex     leader reads: capture the commit index, confirm
///                 leadership with one heartbeat-quorum round, serve
///                 from the applied state machine. No log append.
///   Lease         quorum-granted time lease: while it holds, the
///                 leader skips the confirmation round entirely. The
///                 lease duration is shrunk by the declared worst-case
///                 clock drift (MaxDriftPpm) and dies the moment a
///                 reconfiguration is appended.
///   FollowerLease followers serve reads at a leader-supplied safe
///                 index while the leader's lease covers it; a
///                 wrong-leader or expired-lease NACK falls back to a
///                 retry at the leader (read/ReadTracker.h).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_READ_READPATH_H
#define ADORE_READ_READPATH_H

#include "core/RaftCore.h"

#include <cstdint>

namespace adore {
namespace read {

/// The escalating read tiers. Ordered: a higher tier subsumes the
/// machinery of every lower one.
enum class ReadTier : uint8_t {
  Off = 0,       ///< Reads replicate through the log (baseline).
  ReadIndex = 1, ///< Leader reads behind one confirmation round.
  Lease = 2,     ///< Lease-holding leader skips confirmation.
  FollowerLease = 3, ///< Lease-protected follower reads.
};

/// A tier plus the timing parameters the lease tiers need. The
/// defaults keep every tier OFF and the core's legacy schedule
/// byte-identical.
struct ReadOptions {
  ReadTier Tier = ReadTier::Off;
  /// Requested lease length; the core clamps it to the minimum
  /// election timeout and shrinks it by drift (see effectiveLeaseUs).
  uint64_t LeaseDurationUs = 0;
  /// Declared worst-case clock drift, parts-per-million, used to bound
  /// the adversary: the lease the leader trusts is shortened by
  /// 2*MaxDriftPpm so a follower's faster clock cannot expire the
  /// promise before the leader stops relying on it.
  uint32_t MaxDriftPpm = 0;
};

/// Human-readable tier name (stable; used in bench JSON keys).
inline const char *tierName(ReadTier T) {
  switch (T) {
  case ReadTier::Off:
    return "log";
  case ReadTier::ReadIndex:
    return "read_index";
  case ReadTier::Lease:
    return "lease";
  case ReadTier::FollowerLease:
    return "follower_lease";
  }
  return "?";
}

/// Projects a tier choice onto the core's option set. Only ever turns
/// switches ON relative to \p Opts defaults; an Off tier leaves the
/// options untouched so legacy schedules stay byte-identical.
inline void applyTier(const ReadOptions &RO, core::CoreOptions &Opts) {
  if (RO.Tier >= ReadTier::ReadIndex)
    Opts.EnableReadIndex = true;
  if (RO.Tier >= ReadTier::Lease) {
    Opts.EnableLease = true;
    Opts.LeaseDurationUs = RO.LeaseDurationUs;
    Opts.MaxDriftPpm = RO.MaxDriftPpm;
  }
  if (RO.Tier >= ReadTier::FollowerLease)
    Opts.EnableFollowerReads = true;
}

} // namespace read
} // namespace adore

#endif // ADORE_READ_READPATH_H
