//===- read/ReadTracker.cpp - Client-side read routing policy -------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "read/ReadTracker.h"

#include <algorithm>

using namespace adore;
using namespace adore::read;

ReadTarget ReadTracker::begin(uint64_t &ReadId, NodeId Leader,
                              const std::vector<NodeId> &Members) {
  ReadId = ++NextReadId;
  Pending.push_back({ReadId, false});
  ++Stats.Issued;

  ReadTarget T{Leader, true};
  if (Tier != ReadTier::FollowerLease)
    return T;

  // Round-robin over the non-leader members. The cursor walks the
  // member list by position (not id) so membership changes between
  // reads just re-wrap it.
  size_t N = Members.size();
  for (size_t Step = 0; Step != N; ++Step) {
    NodeId Cand = Members[(NextFollower + Step) % N];
    if (Cand != Leader) {
      NextFollower = (NextFollower + Step + 1) % N;
      return {Cand, false};
    }
  }
  return T; // Singleton group: the leader is the only replica.
}

bool ReadTracker::resolve(uint64_t ReadId, PendingRead &Out) {
  auto It = std::find_if(
      Pending.begin(), Pending.end(),
      [&](const PendingRead &P) { return P.ReadId == ReadId; });
  if (It == Pending.end())
    return false;
  Out = *It;
  Pending.erase(It);
  return true;
}

bool ReadTracker::onNack(uint64_t ReadId, NodeId Leader,
                         ReadTarget &Retry) {
  auto It = std::find_if(
      Pending.begin(), Pending.end(),
      [&](const PendingRead &P) { return P.ReadId == ReadId; });
  if (It == Pending.end())
    return false;
  if (It->RetriedAtLeader) {
    // The leader fallback itself failed; give up on this read.
    Pending.erase(It);
    ++Stats.Failed;
    return false;
  }
  It->RetriedAtLeader = true;
  ++Stats.RetriedAtLeader;
  Retry = {Leader, true};
  return true;
}

void ReadTracker::onServed(uint64_t ReadId, bool AtLeader) {
  PendingRead P;
  if (!resolve(ReadId, P))
    return;
  if (AtLeader)
    ++Stats.ServedAtLeader;
  else
    ++Stats.ServedAtFollower;
}

void ReadTracker::onFailed(uint64_t ReadId) {
  PendingRead P;
  if (resolve(ReadId, P))
    ++Stats.Failed;
}
