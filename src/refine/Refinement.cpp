//===- refine/Refinement.cpp - Raft -> Adore refinement checking -----------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "refine/Refinement.h"

#include "adore/Invariants.h"
#include "support/Debug.h"

#include <algorithm>

using namespace adore;
using namespace adore::refine;
using raft::Entry;
using raft::EntryKind;
using raft::Msg;
using raft::MsgKind;

const char *adore::refine::pEventKindName(PEventKind Kind) {
  switch (Kind) {
  case PEventKind::ElectionWon:
    return "ElectionWon";
  case PEventKind::Invoke:
    return "Invoke";
  case PEventKind::Reconfig:
    return "Reconfig";
  case PEventKind::Commit:
    return "Commit";
  }
  ADORE_UNREACHABLE("unknown protocol event kind");
}

std::string ProtocolEvent::str() const {
  std::string Out = pEventKindName(Kind);
  Out += "(n=" + std::to_string(Nid) + ",t=" + std::to_string(T);
  if (Kind == PEventKind::ElectionWon || Kind == PEventKind::Commit)
    Out += ",Q=" + Q.str();
  if (Kind == PEventKind::Invoke)
    Out += ",m=" + std::to_string(Method);
  if (Kind == PEventKind::Reconfig)
    Out += ",cf=" + Conf.str();
  Out += ",len=" + std::to_string(Len) + ")";
  return Out;
}

//===----------------------------------------------------------------------===//
// EventRecorder
//===----------------------------------------------------------------------===//

void EventRecorder::noteElectionIfWon(NodeId Nid) {
  bool Leads = Sys.isLeader(Nid);
  bool &Was = WasLeader[Nid];
  if (Leads && !Was) {
    const raft::Server &S = Sys.server(Nid);
    ProtocolEvent E;
    E.Kind = PEventKind::ElectionWon;
    E.Nid = Nid;
    E.T = S.CurTime;
    E.Q = S.Votes;
    E.LogSnapshot = S.Log;
    E.Seq = Seq++;
    Events.push_back(std::move(E));
    noteSelfAdoption(Nid);
  }
  Was = Leads;
}

void EventRecorder::noteSelfAdoption(NodeId Nid) {
  const raft::Server &S = Sys.server(Nid);
  if (S.IsLeader)
    noteAdoption(Nid, S.CurTime, Nid, S.Log);
}

void EventRecorder::noteAdoption(NodeId Leader, Time T, NodeId Adopter,
                                 const std::vector<Entry> &Log) {
  auto Key = std::make_pair(Leader, T);
  std::map<NodeId, size_t> &Lens = Adopted[Key];
  size_t &Len = Lens[Adopter];
  Len = std::max(Len, Log.size());

  // A prefix L is committed once a quorum of the configuration in force
  // at L has replicated it and the entry at L-1 carries the leader's
  // term (Raft's own-term commit rule; earlier entries commit
  // transitively). This is adoption-based — acknowledgements reaching
  // the leader are irrelevant to whether the state is durably decided.
  size_t &Reported = CommittedLen[Key];
  for (size_t L = Log.size(); L > Reported; --L) {
    if (Log[L - 1].T != T)
      break;
    std::vector<Entry> Prefix(Log.begin(),
                              Log.begin() + static_cast<ptrdiff_t>(L));
    Config PrefixConf = Sys.configOfEntries(Prefix);
    // Only members of the configuration in force at this prefix count
    // as supporters (Adore's validSupp); a node that adopted the log
    // because a *later* entry admits it is not a witness for L.
    NodeSet Members = Sys.scheme().mbrs(PrefixConf);
    NodeSet Adopters;
    for (const auto &[Node, Got] : Lens)
      if (Got >= L && Members.contains(Node))
        Adopters.insert(Node);
    if (!Sys.scheme().isQuorum(Adopters, PrefixConf))
      continue;
    ProtocolEvent E;
    E.Kind = PEventKind::Commit;
    E.Nid = Leader;
    E.T = T;
    E.Len = L;
    E.Q = Adopters;
    E.LogSnapshot = Log;
    E.Seq = Seq++;
    Events.push_back(std::move(E));
    Reported = L;
    break;
  }
}

void EventRecorder::elect(NodeId Nid) {
  // Standing for election always drops any current leadership, so the
  // rising-edge detector must see the falling edge even when a sitting
  // leader immediately re-elects itself (singleton quorums).
  WasLeader[Nid] = false;
  Sys.elect(Nid);
  noteElectionIfWon(Nid); // Singleton configurations win instantly.
}

bool EventRecorder::invoke(NodeId Nid, MethodId Method) {
  if (!Sys.invoke(Nid, Method))
    return false;
  const raft::Server &S = Sys.server(Nid);
  ProtocolEvent E;
  E.Kind = PEventKind::Invoke;
  E.Nid = Nid;
  E.T = S.CurTime;
  E.Method = Method;
  E.Len = S.Log.size();
  E.LogSnapshot = S.Log;
  E.Seq = Seq++;
  Events.push_back(std::move(E));
  noteSelfAdoption(Nid);
  return true;
}

bool EventRecorder::reconfig(NodeId Nid, const Config &Conf) {
  if (!Sys.reconfig(Nid, Conf))
    return false;
  const raft::Server &S = Sys.server(Nid);
  ProtocolEvent E;
  E.Kind = PEventKind::Reconfig;
  E.Nid = Nid;
  E.T = S.CurTime;
  E.Conf = Conf;
  E.Len = S.Log.size();
  E.LogSnapshot = S.Log;
  E.Seq = Seq++;
  Events.push_back(std::move(E));
  noteSelfAdoption(Nid);
  return true;
}

bool EventRecorder::startCommit(NodeId Nid) {
  if (!Sys.startCommit(Nid))
    return false;
  noteSelfAdoption(Nid);
  return true;
}

bool EventRecorder::deliver(size_t MsgIndex) {
  Msg M = Sys.pending()[MsgIndex];
  bool Accepted = Sys.deliver(MsgIndex);
  // Role changes: any accepted message can depose its recipient; an
  // accepted election ack can crown one.
  if (!Accepted)
    return false;
  switch (M.Kind) {
  case MsgKind::ElectAck:
    noteElectionIfWon(M.To);
    break;
  case MsgKind::ElectReq:
    WasLeader[M.To] = Sys.isLeader(M.To);
    break;
  case MsgKind::CommitReq:
    WasLeader[M.To] = Sys.isLeader(M.To);
    // The recipient adopted the request's log wholesale.
    noteAdoption(M.From, M.T, M.To, M.Log);
    break;
  case MsgKind::CommitAck:
    // Acks only update the leader's *knowledge* (commit index); the
    // commit itself was recorded when adoption crossed the quorum.
    break;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Normalization (executable Lemmas C.3/C.7/C.9)
//===----------------------------------------------------------------------===//

namespace {

/// Sort key: term, then log position within the term. Elections anchor
/// the term (position 0); an entry's append (pos L, phase 0) precedes
/// the commit that covers it (pos L, phase 1).
std::tuple<Time, size_t, unsigned, uint64_t> sortKey(const ProtocolEvent &E) {
  switch (E.Kind) {
  case PEventKind::ElectionWon:
    return {E.T, 0, 0, E.Seq};
  case PEventKind::Invoke:
  case PEventKind::Reconfig:
    return {E.T, E.Len, 0, E.Seq};
  case PEventKind::Commit:
    return {E.T, E.Len, 1, E.Seq};
  }
  ADORE_UNREACHABLE("unknown protocol event kind");
}

} // namespace

std::vector<ProtocolEvent>
adore::refine::normalizeTrace(std::vector<ProtocolEvent> Events) {
  std::stable_sort(Events.begin(), Events.end(),
                   [](const ProtocolEvent &A, const ProtocolEvent &B) {
                     return sortKey(A) < sortKey(B);
                   });
  return Events;
}

//===----------------------------------------------------------------------===//
// logMatch (Fig. 17)
//===----------------------------------------------------------------------===//

std::vector<CacheId> adore::refine::toLog(const CacheTree &Tree,
                                          CacheId Tip) {
  std::vector<CacheId> Out;
  for (CacheId Id : Tree.branchOf(Tip))
    if (Tree.cache(Id).isCommittable())
      Out.push_back(Id);
  return Out;
}

std::optional<std::string> adore::refine::matchBranchAgainstLog(
    const CacheTree &Tree, const std::vector<CacheId> &BranchLog,
    const std::vector<Entry> &Log) {
  if (BranchLog.size() != Log.size())
    return "logMatch: branch has " + std::to_string(BranchLog.size()) +
           " entries, log has " + std::to_string(Log.size());
  for (size_t I = 0; I != Log.size(); ++I) {
    const Cache &C = Tree.cache(BranchLog[I]);
    const Entry &E = Log[I];
    bool KindOk = (E.Kind == EntryKind::Method && C.isMethod()) ||
                  (E.Kind == EntryKind::Reconfig && C.isReconfig());
    if (!KindOk)
      return "logMatch: kind mismatch at slot " + std::to_string(I);
    if (C.T != E.T)
      return "logMatch: term mismatch at slot " + std::to_string(I) +
             ": cache " + std::to_string(C.T) + " vs entry " +
             std::to_string(E.T);
    if (E.Kind == EntryKind::Method && C.Method != E.Method)
      return "logMatch: method mismatch at slot " + std::to_string(I);
    if (E.Kind == EntryKind::Reconfig && C.Conf != E.Conf)
      return "logMatch: config mismatch at slot " + std::to_string(I);
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// RefinementChecker
//===----------------------------------------------------------------------===//

RefinementResult
RefinementChecker::check(const std::vector<ProtocolEvent> &Normalized) {
  RefinementResult Res;
  Semantics Sem(Scheme);
  AdoreState St(Scheme, InitialConf);
  // Per-leader map from log slot (0-based) to the mirroring cache id.
  std::map<NodeId, std::vector<CacheId>> BranchMap;

  auto Fail = [&](const ProtocolEvent &E, std::string Why) {
    Res.Violation = E.str() + ": " + std::move(Why);
    Res.FinalAdoreDump = St.dump();
    return Res;
  };

  for (const ProtocolEvent &E : Normalized) {
    switch (E.Kind) {
    case PEventKind::ElectionWon: {
      PullChoice Choice{E.Q, E.T};
      if (!Sem.isValidPullChoice(St, E.Nid, Choice))
        return Fail(E, "derived pull choice is invalid for Adore");
      Sem.pull(St, E.Nid, Choice);
      CacheId Active = St.Tree.activeCache(E.Nid);
      if (Active == InvalidCacheId ||
          !St.Tree.cache(Active).isElection() ||
          St.Tree.cache(Active).T != E.T)
        return Fail(E, "quorum election did not produce an ECache");
      std::vector<CacheId> Branch = toLog(St.Tree, Active);
      if (auto V = matchBranchAgainstLog(St.Tree, Branch, E.LogSnapshot))
        return Fail(E, *V);
      BranchMap[E.Nid] = std::move(Branch);
      break;
    }
    case PEventKind::Invoke: {
      if (!Sem.invoke(St, E.Nid, E.Method))
        return Fail(E, "Adore invoke failed for an accepted Raft invoke");
      BranchMap[E.Nid].push_back(St.Tree.activeCache(E.Nid));
      if (auto V = matchBranchAgainstLog(St.Tree, BranchMap[E.Nid],
                                         E.LogSnapshot))
        return Fail(E, *V);
      break;
    }
    case PEventKind::Reconfig: {
      if (!Sem.reconfig(St, E.Nid, E.Conf))
        return Fail(E,
                    "Adore reconfig failed for an accepted Raft reconfig");
      BranchMap[E.Nid].push_back(St.Tree.activeCache(E.Nid));
      if (auto V = matchBranchAgainstLog(St.Tree, BranchMap[E.Nid],
                                         E.LogSnapshot))
        return Fail(E, *V);
      break;
    }
    case PEventKind::Commit: {
      const std::vector<CacheId> &Branch = BranchMap[E.Nid];
      if (E.Len == 0 || E.Len > Branch.size())
        return Fail(E, "commit index outside the mirrored branch");
      PushChoice Choice{E.Q, Branch[E.Len - 1]};
      if (!Sem.isValidPushChoice(St, E.Nid, Choice))
        return Fail(E, "derived push choice is invalid for Adore");
      size_t SizeBefore = St.Tree.size();
      Sem.push(St, E.Nid, Choice);
      if (St.Tree.size() == SizeBefore)
        return Fail(E, "quorum commit did not produce a CCache");
      break;
    }
    }
    ++Res.MirroredSteps;
    if (auto V = checkReplicatedStateSafety(St.Tree))
      return Fail(E, "Adore safety violated during mirroring: " + *V);
  }
  Res.FinalAdoreDump = St.dump();
  return Res;
}
