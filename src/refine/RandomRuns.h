//===- refine/RandomRuns.h - Random recorded Raft runs --------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A randomized, round-coherent scheduler producing recorded Raft runs
/// for refinement checking: elections and acknowledgements are delivered
/// with arbitrary delay, interleaving, and loss; commit *requests* are
/// delivered atomically to a quorum-completing subset or wholly lost
/// (the SRaft assumption the executable refinement check relies on —
/// see Refinement.h). Deterministic from its seed.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_REFINE_RANDOMRUNS_H
#define ADORE_REFINE_RANDOMRUNS_H

#include "refine/Refinement.h"
#include "support/Rng.h"

namespace adore {
namespace refine {

/// Knobs for run generation.
struct RunOptions {
  size_t Steps = 400;
  /// Permille of elections/acks dropped instead of delivered.
  unsigned LossPermille = 100;
  /// Permille of commit rounds wholly lost.
  unsigned RoundLossPermille = 150;
  /// Extra node ids available for reconfiguration.
  NodeSet ExtraNodes;
};

/// Statistics about a generated run.
struct RunStats {
  size_t Elections = 0;
  size_t Invokes = 0;
  size_t Reconfigs = 0;
  size_t CommitRounds = 0;
  size_t Deliveries = 0;
};

/// Drives \p Recorder for Opts.Steps scheduler steps. The RaftSystem
/// behind the recorder must be freshly constructed.
RunStats runRandomRecordedRun(EventRecorder &Recorder, Rng &R,
                              const RunOptions &Opts);

} // namespace refine
} // namespace adore

#endif // ADORE_REFINE_RANDOMRUNS_H
