//===- refine/Refinement.h - Raft -> Adore refinement checking -*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable counterpart of the paper's refinement proof (Section 5 /
/// Appendix C). The paper proves: every asynchronous Raft trace can be
/// normalized to an SRaft trace (valid messages only, globally ordered,
/// atomic rounds — Lemmas C.3/C.7/C.9), and every SRaft step has a
/// corresponding Adore step preserving the relation R, whose heart is
/// logMatch: each replica's local log equals the Method/Reconfig caches
/// along its branch of the cache tree (Fig. 17).
///
/// We check this per run instead of proving it once:
///
///  1. EventRecorder drives an asynchronous RaftSystem and extracts the
///     *protocol events* — elections won, local invokes/reconfigs, and
///     commit-index advances — with the participant sets and log
///     snapshots observed in the async run.
///  2. normalizeTrace sorts the events into SRaft's logical-time order
///     (the executable Lemma C.7/C.9: rounds become atomic, ordered by
///     (term, log position)).
///  3. RefinementChecker replays the normalized trace against Adore,
///     driving pull/invoke/reconfig/push with oracle choices *derived*
///     from the async run, and checks after every step that the mirrored
///     leader's branch matches its log snapshot (logMatch), that every
///     derived oracle choice is valid for Adore (the simulation exists),
///     and that Adore's safety invariants hold.
///
/// Scope: like SRaft itself, the check covers traces whose commit rounds
/// deliver atomically (to a quorum) or are wholly lost; sub-quorum
/// partial log adoption is invisible to the Adore state (the paper's
/// PushOk with !Q_ok updates only timestamps) and is treated as loss by
/// the normalization, exactly as Lemma C.3 drops ignorable messages.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_REFINE_REFINEMENT_H
#define ADORE_REFINE_REFINEMENT_H

#include "adore/Ops.h"
#include "raft/RaftSystem.h"

#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace refine {

/// The protocol-level events that correspond to Adore operations.
enum class PEventKind : uint8_t {
  ElectionWon, ///< A candidate crossed its vote quorum -> pull.
  Invoke,      ///< Leader appended a method entry -> invoke.
  Reconfig,    ///< Leader appended a reconfig entry -> reconfig.
  Commit,      ///< Leader's commit index advanced -> push.
};

const char *pEventKindName(PEventKind Kind);

/// One extracted protocol event.
struct ProtocolEvent {
  PEventKind Kind;
  NodeId Nid = InvalidNodeId;
  Time T = 0;
  /// ElectionWon: voters (incl. self). Commit: ackers of the committed
  /// length (incl. self).
  NodeSet Q;
  /// Invoke: the method.
  MethodId Method = 0;
  /// Reconfig: the new configuration.
  Config Conf;
  /// Commit: the advanced-to commit index. Invoke/Reconfig: the log
  /// length after the append (its 1-based entry index).
  size_t Len = 0;
  /// The actor's full log when the event fired.
  std::vector<raft::Entry> LogSnapshot;
  /// Monotone sequence number in async order.
  uint64_t Seq = 0;

  std::string str() const;
};

/// Drives a RaftSystem and extracts ProtocolEvents. Use these wrappers
/// instead of calling the system directly, then read events().
class EventRecorder {
public:
  explicit EventRecorder(raft::RaftSystem &Sys) : Sys(Sys) {}

  void elect(NodeId Nid);
  bool invoke(NodeId Nid, MethodId Method);
  bool reconfig(NodeId Nid, const Config &Conf);
  bool startCommit(NodeId Nid);
  bool deliver(size_t MsgIndex);

  raft::RaftSystem &system() { return Sys; }
  const std::vector<ProtocolEvent> &events() const { return Events; }

private:
  void noteElectionIfWon(NodeId Nid);
  void noteSelfAdoption(NodeId Nid);
  void noteAdoption(NodeId Leader, Time T, NodeId Adopter,
                    const std::vector<raft::Entry> &Log);

  raft::RaftSystem &Sys;
  std::vector<ProtocolEvent> Events;
  uint64_t Seq = 0;
  std::map<NodeId, bool> WasLeader;
  /// Per (leader, term): the log length each replica has adopted. A
  /// commit happens — in the Adore sense of a quorum *replicating* the
  /// prefix — the moment adoption crosses a quorum, regardless of
  /// whether the acknowledgements ever reach the leader.
  std::map<std::pair<NodeId, Time>, std::map<NodeId, size_t>> Adopted;
  /// Per (leader, term): the largest prefix already reported committed.
  std::map<std::pair<NodeId, Time>, size_t> CommittedLen;
};

/// The executable Lemma C.7/C.9: stable-sorts events into SRaft's
/// logical order — by term, then by log position within the term
/// (elections first, an entry's append before the commit that covers
/// it), preserving async order among incomparable events.
std::vector<ProtocolEvent>
normalizeTrace(std::vector<ProtocolEvent> Events);

/// Result of a refinement check.
struct RefinementResult {
  /// First violation of the simulation or of logMatch; nullopt = the
  /// whole trace refines Adore.
  std::optional<std::string> Violation;
  /// Adore operations mirrored.
  size_t MirroredSteps = 0;
  /// The final Adore state (for inspection).
  std::string FinalAdoreDump;

  bool holds() const { return !Violation.has_value(); }
};

/// Replays a normalized protocol trace against Adore and checks the
/// simulation + logMatch + safety after every mirrored step.
class RefinementChecker {
public:
  RefinementChecker(const ReconfigScheme &Scheme, Config InitialConf)
      : Scheme(Scheme), InitialConf(std::move(InitialConf)) {}

  RefinementResult check(const std::vector<ProtocolEvent> &Normalized);

private:
  const ReconfigScheme &Scheme;
  Config InitialConf;
};

/// toLog (Fig. 17): the Method/Reconfig caches along the branch of
/// \p Tip, root-first.
std::vector<CacheId> toLog(const CacheTree &Tree, CacheId Tip);

/// Compares a branch's M/R caches against a Raft log; returns a
/// description of the first mismatch.
std::optional<std::string>
matchBranchAgainstLog(const CacheTree &Tree,
                      const std::vector<CacheId> &BranchLog,
                      const std::vector<raft::Entry> &Log);

} // namespace refine
} // namespace adore

#endif // ADORE_REFINE_REFINEMENT_H
