//===- refine/RandomRuns.cpp - Random recorded Raft runs -------------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "refine/RandomRuns.h"

using namespace adore;
using namespace adore::refine;
using raft::Msg;
using raft::MsgKind;
using raft::RaftSystem;

namespace {

/// Picks a subset of \p Conf's members (minus the leader) whose union
/// with the leader forms a quorum, preferring small subsets; returns an
/// empty set when no quorum of *receptive* members (observed term <=
/// the leader's) exists. Restricting to receptive members keeps commit
/// rounds all-or-nothing: every chosen recipient will accept, so
/// adoption either crosses the quorum or the round is dropped whole.
NodeSet pickQuorumCompletion(const raft::RaftSystem &Sys,
                             const ReconfigScheme &Scheme,
                             const Config &Conf, NodeId Leader, Rng &R) {
  NodeSet Members = Scheme.mbrs(Conf);
  Time LeaderTime = Sys.observedTime(Leader);
  std::vector<NodeId> Others;
  for (NodeId N : Members)
    if (N != Leader && Sys.observedTime(N) <= LeaderTime)
      Others.push_back(N);
  R.shuffle(Others);
  NodeSet Chosen{Leader};
  if (Scheme.isQuorum(Chosen, Conf)) {
    Chosen.erase(Leader);
    return Chosen; // Leader alone suffices; no recipients needed.
  }
  NodeSet Out;
  for (NodeId N : Others) {
    Out.insert(N);
    Chosen.insert(N);
    if (Scheme.isQuorum(Chosen, Conf)) {
      // Optionally over-provision by one more recipient.
      if (!Others.empty() && R.nextChance(1, 3)) {
        for (NodeId Extra : Others)
          if (!Out.contains(Extra)) {
            Out.insert(Extra);
            break;
          }
      }
      return Out;
    }
  }
  return NodeSet{}; // Unreachable quorum (e.g. too many nodes down).
}

} // namespace

RunStats adore::refine::runRandomRecordedRun(EventRecorder &Recorder,
                                             Rng &R,
                                             const RunOptions &Opts) {
  RunStats Stats;
  RaftSystem &Sys = Recorder.system();
  const ReconfigScheme &Scheme = Sys.scheme();

  auto RandomNode = [&]() -> NodeId {
    NodeSet U = Sys.universe().unionWith(Opts.ExtraNodes);
    return U[R.nextBelow(U.size())];
  };

  // Leaders append a no-op entry at their own term as soon as they win
  // (the term-start barrier every practical Raft deploys, and the
  // pattern R3 presupposes). This keeps every replication round's top
  // entry at the leader's own term, so quorum adoption always coincides
  // with commitment and every replica's log stays witnessed by a
  // CCache — the SRaft discipline the executable refinement check
  // covers (see Refinement.h).
  auto MaintainBarriers = [&]() {
    for (NodeId N : Sys.universe()) {
      if (!Sys.isLeader(N))
        continue;
      const auto &Log = Sys.log(N);
      Time T = Sys.observedTime(N);
      if (Log.empty() || Log.back().T != T)
        Recorder.invoke(N, /*Method=*/0);
    }
  };

  for (size_t Step = 0; Step != Opts.Steps; ++Step) {
    MaintainBarriers();
    switch (R.nextBelow(10)) {
    case 0: { // Start an election; its messages drift in the network.
      NodeId Nid = RandomNode();
      if (!Sys.universe().contains(Nid))
        break; // Spare nodes idle until a configuration admits them.
      Recorder.elect(Nid);
      ++Stats.Elections;
      break;
    }
    case 1:
    case 2: { // Leader appends an entry.
      NodeId Nid = RandomNode();
      if (Recorder.invoke(Nid, Step + 1))
        ++Stats.Invokes;
      break;
    }
    case 3: { // Leader proposes a reconfiguration.
      NodeId Nid = RandomNode();
      if (!Sys.isLeader(Nid))
        break;
      NodeSet Universe = Sys.universe().unionWith(Opts.ExtraNodes);
      auto Candidates =
          Scheme.candidateReconfigs(Sys.currentConfig(Nid), Universe);
      if (Candidates.empty())
        break;
      if (Recorder.reconfig(Nid,
                            Candidates[R.nextBelow(Candidates.size())]))
        ++Stats.Reconfigs;
      break;
    }
    case 4:
    case 5: { // Atomic commit round: requests land on a quorum or die.
      NodeId Nid = RandomNode();
      if (!Sys.isLeader(Nid))
        break;
      size_t FirstNew = Sys.pending().size();
      if (!Recorder.startCommit(Nid))
        break;
      ++Stats.CommitRounds;
      bool Lost = R.nextChance(Opts.RoundLossPermille, 1000);
      NodeSet Recipients =
          Lost ? NodeSet{}
               : pickQuorumCompletion(Sys, Scheme,
                                      Sys.currentConfig(Nid), Nid, R);
      // Deliver this round's requests to the chosen recipients, drop
      // the rest (scan the fresh tail of the pending queue).
      for (size_t I = Sys.pending().size(); I-- > FirstNew;) {
        const Msg &M = Sys.pending()[I];
        if (M.Kind != MsgKind::CommitReq || M.From != Nid)
          continue;
        if (Recipients.contains(M.To)) {
          Recorder.deliver(I);
          ++Stats.Deliveries;
        } else {
          size_t Doomed = I;
          size_t Count = 0;
          Sys.dropPendingIf(
              [&](const Msg &) { return Count++ == Doomed; });
        }
      }
      break;
    }
    default: { // Deliver or lose one drifting message (elections, acks).
      if (Sys.pending().empty())
        break;
      size_t I = R.nextBelow(Sys.pending().size());
      if (Sys.pending()[I].Kind == MsgKind::CommitReq)
        break; // Commit requests never drift (handled atomically).
      if (R.nextChance(Opts.LossPermille, 1000)) {
        size_t Count = 0;
        Sys.dropPendingIf([&](const Msg &) { return Count++ == I; });
      } else {
        Recorder.deliver(I);
        ++Stats.Deliveries;
      }
      break;
    }
    }
  }
  return Stats;
}
