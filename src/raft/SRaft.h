//===- raft/SRaft.h - Simplified synchronous Raft driver ------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SRaft (Section 5): the same state and step functions as the
/// asynchronous Raft specification, but driven under its simplifying
/// assumptions — only valid messages are delivered, in logical-timestamp
/// order, with each protocol round's request and acknowledgements
/// delivered atomically. We realize SRaft as a *driver* over RaftSystem
/// rather than a second specification: electRound and commitRound
/// perform a whole round's deliveries back-to-back, which by
/// construction yields exactly the valid/ordered/atomic traces of
/// Lemmas C.3/C.7/C.9.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RAFT_SRAFT_H
#define ADORE_RAFT_SRAFT_H

#include "raft/RaftSystem.h"

namespace adore {
namespace raft {

/// Atomic-round driver implementing SRaft's scheduling assumptions.
class SRaftDriver {
public:
  explicit SRaftDriver(RaftSystem &Sys) : Sys(Sys) {}

  /// Runs one full election round for \p Nid: elect, deliver the
  /// requests to \p Voters (only), deliver their acks back, and drop the
  /// round's remaining messages (lost). Returns true iff \p Nid emerged
  /// as leader.
  bool electRound(NodeId Nid, const NodeSet &Voters);

  /// Runs one full commit round for leader \p Nid: broadcast, deliver
  /// requests to \p Ackers, deliver their acks back, drop the rest.
  /// Returns the leader's commit index afterwards.
  size_t commitRound(NodeId Nid, const NodeSet &Ackers);

  /// Local operations pass through unchanged.
  bool invoke(NodeId Nid, MethodId Method) {
    return Sys.invoke(Nid, Method);
  }
  bool reconfig(NodeId Nid, const Config &Conf) {
    return Sys.reconfig(Nid, Conf);
  }

  RaftSystem &system() { return Sys; }

private:
  /// Delivers the first pending message matching (Kind, From, To, T);
  /// returns acceptance, or nullopt if no such message is pending.
  std::optional<bool> deliverMatching(MsgKind Kind, NodeId From, NodeId To,
                                      Time T);

  /// Drops every pending message with the given kind and timestamp
  /// (SRaft loses what a round did not deliver).
  void dropRound(Time T);

  RaftSystem &Sys;
};

} // namespace raft
} // namespace adore

#endif // ADORE_RAFT_SRAFT_H
