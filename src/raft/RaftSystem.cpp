//===- raft/RaftSystem.cpp - Network-based Raft specification --------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "raft/RaftSystem.h"

#include "support/Debug.h"

#include <algorithm>
#include <cassert>

using namespace adore;
using namespace adore::raft;

const char *adore::raft::msgKindName(MsgKind Kind) {
  switch (Kind) {
  case MsgKind::ElectReq:
    return "ElectReq";
  case MsgKind::ElectAck:
    return "ElectAck";
  case MsgKind::CommitReq:
    return "CommitReq";
  case MsgKind::CommitAck:
    return "CommitAck";
  }
  ADORE_UNREACHABLE("unknown message kind");
}

std::string Msg::str() const {
  std::string Out = msgKindName(Kind);
  Out += "(" + std::to_string(From) + "->" + std::to_string(To) +
         ",t=" + std::to_string(T);
  if (Kind == MsgKind::CommitAck || Kind == MsgKind::CommitReq)
    Out += ",len=" + std::to_string(Len);
  if (Kind == MsgKind::ElectReq || Kind == MsgKind::CommitReq)
    Out += ",|log|=" + std::to_string(Log.size());
  Out += ")";
  return Out;
}

//===----------------------------------------------------------------------===//
// Construction and basic accessors
//===----------------------------------------------------------------------===//

RaftSystem::RaftSystem(const ReconfigScheme &Scheme, Config InitialConf,
                       RaftOptions Opts)
    : Scheme(&Scheme), InitialConf(std::move(InitialConf)), Opts(Opts) {
  for (NodeId Nid : Scheme.mbrs(this->InitialConf))
    Servers.emplace(Nid, Server{});
}

const Server &RaftSystem::server(NodeId Nid) const {
  auto It = Servers.find(Nid);
  assert(It != Servers.end() && "unknown server");
  return It->second;
}

Server &RaftSystem::serverMut(NodeId Nid) {
  // Nodes joining via reconfiguration get fresh state on first contact.
  return Servers[Nid];
}

Config RaftSystem::configOfLog(const std::vector<Entry> &Log) const {
  return raft::configOfPrefix(Log, Log.size(), InitialConf);
}

Config RaftSystem::currentConfig(NodeId Nid) const {
  return configOfLog(server(Nid).Log);
}

NodeSet RaftSystem::universe() const {
  NodeSet U = Scheme->mbrs(InitialConf);
  for (const auto &[Nid, S] : Servers) {
    U.insert(Nid);
    for (const Entry &E : S.Log)
      if (E.Kind == EntryKind::Reconfig)
        U = U.unionWith(Scheme->mbrs(E.Conf));
  }
  return U;
}

//===----------------------------------------------------------------------===//
// Guards
//===----------------------------------------------------------------------===//

bool RaftSystem::logSatisfiesR2(NodeId Nid) const {
  const Server &S = server(Nid);
  for (size_t I = S.CommitIndex; I != S.Log.size(); ++I)
    if (S.Log[I].Kind == EntryKind::Reconfig)
      return false;
  return true;
}

bool RaftSystem::logSatisfiesR3(NodeId Nid) const {
  const Server &S = server(Nid);
  for (size_t I = 0; I != S.CommitIndex; ++I)
    if (S.Log[I].T == S.CurTime)
      return true;
  return false;
}

bool RaftSystem::logUpToDate(const std::vector<Entry> &A,
                             const std::vector<Entry> &B) {
  return raft::logUpToDate(A, B);
}

//===----------------------------------------------------------------------===//
// Operations
//===----------------------------------------------------------------------===//

void RaftSystem::observe(Server &S, Time T) {
  if (T <= S.CurTime)
    return;
  S.CurTime = T;
  S.IsLeader = false;
  S.IsCandidate = false;
  S.Votes.clear();
  S.AckedLen.clear();
}

void RaftSystem::broadcast(const Msg &Template, const Config &Conf) {
  for (NodeId To : Scheme->mbrs(Conf)) {
    if (To == Template.From)
      continue;
    Msg M = Template;
    M.To = To;
    Pending.push_back(std::move(M));
    ++SentCount;
  }
}

void RaftSystem::elect(NodeId Nid) {
  // Only members of their own configuration may stand for election
  // (a message from outside the configuration is invalid, Def. C.2).
  auto It = Servers.find(Nid);
  Config OwnConf =
      It == Servers.end() ? InitialConf : configOfLog(It->second.Log);
  if (!Scheme->mbrs(OwnConf).contains(Nid))
    return;
  Server &S = serverMut(Nid);
  S.CurTime += 1;
  S.IsLeader = false;
  S.IsCandidate = true;
  S.Votes = NodeSet{Nid}; // Votes for itself.
  S.BestLog = S.Log;      // Paxos mode: adoption starts from our log.
  S.AckedLen.clear();
  Config Conf = configOfLog(S.Log);
  // A single-member configuration elects immediately.
  if (Scheme->isQuorum(S.Votes, Conf)) {
    S.IsCandidate = false;
    S.IsLeader = true;
    S.AckedLen[Nid] = S.Log.size();
  }
  Msg Req;
  Req.Kind = MsgKind::ElectReq;
  Req.From = Nid;
  Req.T = S.CurTime;
  Req.Log = S.Log;
  broadcast(Req, Conf);
}

bool RaftSystem::invoke(NodeId Nid, MethodId Method) {
  auto It = Servers.find(Nid);
  if (It == Servers.end() || !It->second.IsLeader)
    return false;
  Server &S = It->second;
  Entry E;
  E.Kind = EntryKind::Method;
  E.T = S.CurTime;
  E.Method = Method;
  E.Conf = configOfLog(S.Log);
  S.Log.push_back(std::move(E));
  S.AckedLen[Nid] = S.Log.size();
  return true;
}

bool RaftSystem::reconfig(NodeId Nid, const Config &NewConf) {
  auto It = Servers.find(Nid);
  if (It == Servers.end() || !It->second.IsLeader)
    return false;
  Server &S = It->second;
  if (!Scheme->isValidConfig(NewConf))
    return false;
  // A leader never proposes its own removal: Adore's push rule
  // (nid in Q within mbrs(conf(C_M))) makes a self-removal commit
  // inexpressible, and practical Raft has the departing leader hand
  // over first so another node drives the change.
  if (!Scheme->mbrs(NewConf).contains(Nid))
    return false;
  if (Opts.EnforceR1 && !Scheme->r1Plus(configOfLog(S.Log), NewConf))
    return false;
  if (Opts.EnforceR2 && !logSatisfiesR2(Nid))
    return false;
  if (Opts.EnforceR3 && !logSatisfiesR3(Nid))
    return false;
  Entry E;
  E.Kind = EntryKind::Reconfig;
  E.T = S.CurTime;
  E.Conf = NewConf; // Takes effect immediately (hot reconfiguration).
  S.Log.push_back(std::move(E));
  S.AckedLen[Nid] = S.Log.size();
  return true;
}

bool RaftSystem::startCommit(NodeId Nid) {
  auto It = Servers.find(Nid);
  if (It == Servers.end() || !It->second.IsLeader)
    return false;
  Server &S = It->second;
  Msg Req;
  Req.Kind = MsgKind::CommitReq;
  Req.From = Nid;
  Req.T = S.CurTime;
  Req.Len = S.CommitIndex;
  Req.Log = S.Log;
  broadcast(Req, configOfLog(S.Log));
  return true;
}

bool RaftSystem::deliver(size_t MsgIndex) {
  assert(MsgIndex < Pending.size() && "bad message index");
  Msg M = std::move(Pending[MsgIndex]);
  Pending.erase(Pending.begin() + static_cast<ptrdiff_t>(MsgIndex));
  Server &S = serverMut(M.To);
  switch (M.Kind) {
  case MsgKind::ElectReq:
    return handleElectReq(S, M);
  case MsgKind::ElectAck:
    return handleElectAck(S, M);
  case MsgKind::CommitReq:
    return handleCommitReq(S, M);
  case MsgKind::CommitAck:
    return handleCommitAck(S, M);
  }
  ADORE_UNREACHABLE("unknown message kind");
}

bool RaftSystem::handleElectReq(Server &S, const Msg &M) {
  // Raft style: grant iff the term is fresh AND the candidate's log is
  // at least as up-to-date as ours (the candidate keeps its own log).
  // Paxos style: grant on a fresh term alone, shipping our log back so
  // the candidate can adopt the quorum maximum.
  if (M.T <= S.CurTime)
    return false;
  if (!Opts.PaxosStyleElections && !logUpToDate(M.Log, S.Log))
    return false;
  observe(S, M.T);
  Msg Ack;
  Ack.Kind = MsgKind::ElectAck;
  Ack.From = M.To;
  Ack.To = M.From;
  Ack.T = M.T;
  if (Opts.PaxosStyleElections)
    Ack.Log = S.Log;
  Pending.push_back(std::move(Ack));
  ++SentCount;
  return true;
}

bool RaftSystem::handleElectAck(Server &S, const Msg &M) {
  if (!S.IsCandidate || M.T != S.CurTime)
    return false;
  S.Votes.insert(M.From);
  if (Opts.PaxosStyleElections && logUpToDate(M.Log, S.BestLog))
    S.BestLog = M.Log;
  // Paxos mode evaluates the quorum against the newest configuration
  // learned from the vote replies, not the candidate's own (possibly
  // stale) one: a voter may carry a committed reconfiguration the
  // candidate has never seen, and counting the old quorum against it
  // is precisely the stale-configuration election bug the paper's
  // Fig. 4 revolves around. (Our own refinement checker caught this
  // variant before this guard existed.)
  const std::vector<Entry> &QuorumView =
      Opts.PaxosStyleElections ? S.BestLog : S.Log;
  Config ViewConf = configOfLog(QuorumView);
  NodeSet Members = Scheme->mbrs(ViewConf);
  // Votes from nodes outside the governing configuration carry no
  // weight (a removed-but-unaware server still answers in Paxos mode).
  NodeSet Counted =
      Opts.PaxosStyleElections ? S.Votes.intersectWith(Members) : S.Votes;
  if (Scheme->isQuorum(Counted, ViewConf)) {
    if (Opts.PaxosStyleElections && !Members.contains(M.To)) {
      // The adopted configuration excludes this candidate: it learned
      // of its own removal mid-election and stands down with the
      // adopted (more up-to-date) log.
      S.Log = std::move(S.BestLog);
      S.CommitIndex = std::min(S.CommitIndex, S.Log.size());
      S.IsCandidate = false;
      S.Votes.clear();
      return true;
    }
    S.IsCandidate = false;
    S.IsLeader = true;
    if (Opts.PaxosStyleElections) {
      // Adopt the quorum maximum; committed entries are inside it by
      // quorum intersection, our own stale tail (if outvoted) dies.
      S.Log = std::move(S.BestLog);
      S.CommitIndex = std::min(S.CommitIndex, S.Log.size());
      S.Votes = Counted; // The official supporter set: members only.
    }
    S.AckedLen.clear();
    S.AckedLen[M.To] = S.Log.size();
  }
  return true;
}

bool RaftSystem::handleCommitReq(Server &S, const Msg &M) {
  // Accept iff the leader's term is newer, or the same term with a log
  // at least as up-to-date as ours. The up-to-date comparison (not a
  // bare length check) matters at equal terms: a replica that led an
  // *older* term may hold a longer log on a dead branch, which the
  // current leader's shorter-but-newer log must overwrite; whereas a
  // same-leader stale rebroadcast (same last term, shorter) is ignored.
  if (M.T < S.CurTime)
    return false;
  if (M.T == S.CurTime && !logUpToDate(M.Log, S.Log))
    return false;
  if (M.T == S.CurTime && S.IsLeader)
    return false; // A leader ignores its own-term requests (impossible
                  // from another node; duplicates of self are filtered
                  // by broadcast).
  observe(S, M.T);
  // A same-term candidate learns a leader exists and stands down.
  S.IsCandidate = false;
  S.Votes.clear();
  S.CurTime = M.T;
  S.Log = M.Log;
  // Learn the leader's commit index, never regressing: a stale request
  // from earlier in the same term carries an older (smaller) index.
  S.CommitIndex = std::max(S.CommitIndex, std::min(M.Len, S.Log.size()));
  Msg Ack;
  Ack.Kind = MsgKind::CommitAck;
  Ack.From = M.To;
  Ack.To = M.From;
  Ack.T = M.T;
  Ack.Len = S.Log.size();
  Pending.push_back(std::move(Ack));
  ++SentCount;
  return true;
}

bool RaftSystem::handleCommitAck(Server &S, const Msg &M) {
  if (!S.IsLeader || M.T != S.CurTime)
    return false;
  size_t &Acked = S.AckedLen[M.From];
  if (M.Len <= Acked && Acked != 0)
    return false; // Stale duplicate.
  Acked = std::max(Acked, M.Len);
  advanceCommitIndex(S, M.To);
  return true;
}

void RaftSystem::advanceCommitIndex(Server &Leader, NodeId Nid) {
  Leader.AckedLen[Nid] = Leader.Log.size();
  // Find the largest L > CommitIndex such that the replicas that acked
  // >= L form a quorum of the configuration in effect at prefix L, and
  // the entry at L-1 belongs to the current term (Raft's commit rule).
  for (size_t L = Leader.Log.size(); L > Leader.CommitIndex; --L) {
    if (Leader.Log[L - 1].T != Leader.CurTime)
      break; // Older-term entries commit only transitively.
    NodeSet Ackers;
    for (const auto &[Node, Len] : Leader.AckedLen)
      if (Len >= L)
        Ackers.insert(Node);
    std::vector<Entry> Prefix(Leader.Log.begin(),
                              Leader.Log.begin() +
                                  static_cast<ptrdiff_t>(L));
    if (Scheme->isQuorum(Ackers, configOfLog(Prefix))) {
      Leader.CommitIndex = L;
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Observers
//===----------------------------------------------------------------------===//

std::vector<Entry> RaftSystem::committedPrefix(NodeId Nid) const {
  const Server &S = server(Nid);
  return std::vector<Entry>(S.Log.begin(),
                            S.Log.begin() +
                                static_cast<ptrdiff_t>(S.CommitIndex));
}

std::optional<std::string> RaftSystem::checkCommittedAgreement() const {
  for (auto A = Servers.begin(); A != Servers.end(); ++A) {
    for (auto B = std::next(A); B != Servers.end(); ++B) {
      size_t Common = std::min(A->second.CommitIndex,
                               B->second.CommitIndex);
      for (size_t I = 0; I != Common; ++I) {
        if (A->second.Log[I] == B->second.Log[I])
          continue;
        return "committed prefix disagreement between " +
               std::to_string(A->first) + " and " +
               std::to_string(B->first) + " at slot " + std::to_string(I);
      }
    }
  }
  return std::nullopt;
}

uint64_t RaftSystem::fingerprint() const {
  Fnv1aHasher H;
  addToSink(H);
  return H.finish();
}

std::string RaftSystem::encode() const {
  StateEncoder E;
  addToSink(E);
  return E.take();
}

std::string RaftSystem::dump() const {
  std::string Out;
  for (const auto &[Nid, S] : Servers) {
    Out += "S" + std::to_string(Nid) + " t=" + std::to_string(S.CurTime);
    Out += S.IsLeader ? " L" : (S.IsCandidate ? " C" : "  ");
    Out += " ci=" + std::to_string(S.CommitIndex) + " log=[";
    for (size_t I = 0; I != S.Log.size(); ++I) {
      if (I)
        Out += " ";
      const Entry &E = S.Log[I];
      Out += (E.Kind == EntryKind::Reconfig)
                 ? "R" + E.Conf.str()
                 : "m" + std::to_string(E.Method);
      Out += "@" + std::to_string(E.T);
    }
    Out += "]\n";
  }
  Out += "pending: " + std::to_string(Pending.size()) + " msgs\n";
  return Out;
}
