//===- raft/RaftSystem.h - Network-based Raft specification ---*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable form of the paper's asynchronous network-based Raft
/// specification (Section 5, Fig. 13): a set of servers with local logs,
/// a network holding sent messages, the elect / commit / invoke /
/// reconfig operations, and deliver, which hands one pending message to
/// its recipient. All protocol nondeterminism (who acts, which message
/// is delivered next) is external: a scheduler — random, scripted,
/// SRaft-normalizing, or the model checker — drives the system.
///
/// The protocol is parameterized by the same ReconfigScheme (isQuorum /
/// R1+) as Adore, and enforces the log-level analogs of R2 (no
/// uncommitted reconfig entry) and R3 (a committed entry at the current
/// term) before accepting a reconfiguration. Hot semantics: a reconfig
/// entry's configuration takes effect the moment it enters a log.
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RAFT_RAFTSYSTEM_H
#define ADORE_RAFT_RAFTSYSTEM_H

#include "raft/Message.h"
#include "support/Hashing.h"
#include "support/NodeSet.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adore {
namespace raft {

/// One replica's local state.
struct Server {
  /// Largest term observed (and the term of its candidacy/leadership).
  Time CurTime = 0;
  /// Role flags; a server is a candidate from elect() until it wins or
  /// observes a newer term.
  bool IsLeader = false;
  bool IsCandidate = false;
  /// Votes received for the current candidacy.
  NodeSet Votes;
  /// Paxos-style candidacy: the most up-to-date log seen in vote
  /// replies so far (starts as the candidate's own).
  std::vector<Entry> BestLog;
  /// The local log.
  std::vector<Entry> Log;
  /// Index (exclusive prefix length) of committed entries.
  size_t CommitIndex = 0;
  /// For leaders: the longest log length each replica acknowledged at
  /// the current term.
  std::map<NodeId, size_t> AckedLen;
};

/// Ablation toggles mirroring SemanticsOptions for the protocol level.
struct RaftOptions {
  bool EnforceR1 = true; ///< R1+ on proposed configurations.
  bool EnforceR2 = true; ///< No uncommitted reconfig entry in the log.
  bool EnforceR3 = true; ///< Committed entry at the current term first.
  /// Paxos-style elections (Appendix A): voters grant on term alone and
  /// reply with their logs; the winning candidate adopts the most
  /// up-to-date log among its quorum. Default is Raft-style (voters
  /// refuse less up-to-date candidates; the candidate keeps its log).
  /// Either way the elected leader ends up holding the quorum maximum —
  /// the paper's point that Adore covers both families.
  bool PaxosStyleElections = false;
};

/// The whole distributed system: servers + network.
class RaftSystem {
public:
  RaftSystem(const ReconfigScheme &Scheme, Config InitialConf,
             RaftOptions Opts = {});

  const ReconfigScheme &scheme() const { return *Scheme; }

  //===--------------------------------------------------------------===//
  // Operations (Fig. 13). Local operations return false when their
  // guard fails (e.g. invoke by a non-leader).
  //===--------------------------------------------------------------===//

  /// The replica becomes a candidate at a fresh term and broadcasts
  /// election requests carrying its log to its current configuration.
  void elect(NodeId Nid);

  /// Leader-only: appends a method entry to the local log.
  bool invoke(NodeId Nid, MethodId Method);

  /// Leader-only: appends a reconfig entry (guarded by R1+/R2/R3 per
  /// RaftOptions). The new configuration takes effect immediately.
  bool reconfig(NodeId Nid, const Config &NewConf);

  /// Leader-only: broadcasts commit requests (AppendEntries) carrying
  /// the leader's log and commit index to its configuration.
  bool startCommit(NodeId Nid);

  /// Delivers the \p MsgIndex-th pending message; returns true iff the
  /// recipient accepted (did not ignore) it. The message leaves the
  /// pending set either way.
  bool deliver(size_t MsgIndex);

  //===--------------------------------------------------------------===//
  // Network inspection
  //===--------------------------------------------------------------===//

  /// Messages sent but not yet delivered.
  const std::vector<Msg> &pending() const { return Pending; }

  /// Removes (loses) every pending message satisfying \p P. Message loss
  /// is always a valid network behaviour.
  template <typename PredT> void dropPendingIf(PredT &&P) {
    Pending.erase(std::remove_if(Pending.begin(), Pending.end(), P),
                  Pending.end());
  }

  /// Count of messages ever sent (delivered + pending).
  size_t sentCount() const { return SentCount; }

  //===--------------------------------------------------------------===//
  // Server observers
  //===--------------------------------------------------------------===//

  const Server &server(NodeId Nid) const;
  /// Largest term \p Nid has observed; 0 for nodes never contacted.
  Time observedTime(NodeId Nid) const {
    auto It = Servers.find(Nid);
    return It == Servers.end() ? 0 : It->second.CurTime;
  }
  bool isLeader(NodeId Nid) const {
    auto It = Servers.find(Nid);
    return It != Servers.end() && It->second.IsLeader;
  }
  const std::vector<Entry> &log(NodeId Nid) const {
    return server(Nid).Log;
  }
  size_t commitIndex(NodeId Nid) const { return server(Nid).CommitIndex; }

  /// The configuration a server operates under: its log's latest
  /// reconfig entry, or the initial configuration.
  Config currentConfig(NodeId Nid) const;

  /// The configuration a given entry sequence induces (its last reconfig
  /// entry, or the initial configuration).
  Config configOfEntries(const std::vector<Entry> &Log) const {
    return configOfLog(Log);
  }

  /// Every node id that is a member of any configuration in any log or
  /// the initial configuration.
  NodeSet universe() const;

  /// The committed prefix (as entries) of \p Nid's log.
  std::vector<Entry> committedPrefix(NodeId Nid) const;

  /// Checks replicated state safety at the protocol level: all servers'
  /// committed prefixes agree slot by slot. Returns a description of the
  /// first disagreement.
  std::optional<std::string> checkCommittedAgreement() const;

  /// Structure fingerprint over all servers and the pending network.
  uint64_t fingerprint() const;

  /// Exact canonical byte encoding covering the same data as the
  /// fingerprint (shared sink traversal). Audit-layer state identity.
  std::string encode() const;

  /// Streams the canonical state into a fingerprint hasher or canonical
  /// encoder. The pending network is a multiset: per-message digests are
  /// sorted before being fed back, so delivery bookkeeping order never
  /// distinguishes states.
  template <typename SinkT> void addToSink(SinkT &S) const {
    S.addU64(Servers.size());
    for (const auto &[Nid, Srv] : Servers) {
      S.addU64(Nid);
      S.addU64(Srv.CurTime);
      S.addBool(Srv.IsLeader);
      S.addBool(Srv.IsCandidate);
      S.addNodeSet(Srv.Votes);
      S.addU64(Srv.BestLog.size());
      for (const Entry &E : Srv.BestLog) {
        S.addByte(static_cast<uint8_t>(E.Kind));
        S.addU64(E.T);
        S.addU64(E.Method);
        E.Conf.addToSink(S);
      }
      S.addU64(Srv.CommitIndex);
      S.addU64(Srv.Log.size());
      for (const Entry &E : Srv.Log) {
        S.addByte(static_cast<uint8_t>(E.Kind));
        S.addU64(E.T);
        S.addU64(E.Method);
        E.Conf.addToSink(S);
      }
      S.addU64(Srv.AckedLen.size());
      for (const auto &[Node, Len] : Srv.AckedLen) {
        S.addU64(Node);
        S.addU64(Len);
      }
    }
    std::vector<decltype(sinkSubResult(S))> Net;
    Net.reserve(Pending.size());
    for (const Msg &M : Pending) {
      SinkT Sub;
      Sub.addByte(static_cast<uint8_t>(M.Kind));
      Sub.addU64(M.From);
      Sub.addU64(M.To);
      Sub.addU64(M.T);
      Sub.addU64(M.Len);
      Sub.addU64(M.Log.size());
      for (const Entry &E : M.Log) {
        Sub.addByte(static_cast<uint8_t>(E.Kind));
        Sub.addU64(E.T);
        Sub.addU64(E.Method);
        E.Conf.addToSink(Sub);
      }
      Net.push_back(sinkSubResult(Sub));
    }
    std::sort(Net.begin(), Net.end());
    S.addU64(Net.size());
    for (const auto &R : Net)
      addSubResult(S, R);
  }

  std::string dump() const;

  /// Log-level analogs of the reconfiguration guards, exposed for tests.
  bool logSatisfiesR2(NodeId Nid) const;
  bool logSatisfiesR3(NodeId Nid) const;

private:
  Server &serverMut(NodeId Nid);
  void observe(Server &S, Time T);
  void broadcast(const Msg &Template, const Config &Conf);
  bool handleElectReq(Server &S, const Msg &M);
  bool handleElectAck(Server &S, const Msg &M);
  bool handleCommitReq(Server &S, const Msg &M);
  bool handleCommitAck(Server &S, const Msg &M);
  Config configOfLog(const std::vector<Entry> &Log) const;
  /// True iff log A is at least as up-to-date as log B (Raft's last-term
  /// then length comparison).
  static bool logUpToDate(const std::vector<Entry> &A,
                          const std::vector<Entry> &B);
  /// Recomputes the leader's commit index from acknowledgements.
  void advanceCommitIndex(Server &Leader, NodeId Nid);

  /// Pointer (not reference) so the system stays copy- and
  /// move-assignable for the model checker's state handling.
  const ReconfigScheme *Scheme;
  Config InitialConf;
  RaftOptions Opts;
  std::map<NodeId, Server> Servers;
  std::vector<Msg> Pending;
  size_t SentCount = 0;
};

} // namespace raft
} // namespace adore

#endif // ADORE_RAFT_RAFTSYSTEM_H
