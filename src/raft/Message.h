//===- raft/Message.h - Network messages ----------------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four message types of the network-based Raft specification
/// (Fig. 13): election requests/acknowledgements and commit
/// requests/acknowledgements. Following the paper's simplified protocol,
/// requests carry the sender's full log (a candidate ships its log for
/// the up-to-date check; a leader ships its log for wholesale adoption).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RAFT_MESSAGE_H
#define ADORE_RAFT_MESSAGE_H

#include "adore/Config.h"
#include "support/Ids.h"

#include <string>
#include <vector>

namespace adore {
namespace raft {

/// What a log slot holds.
enum class EntryKind : uint8_t {
  Method,   ///< An application command.
  Reconfig, ///< A configuration change (takes effect on log entry).
};

/// One slot of a replica's log.
struct Entry {
  EntryKind Kind = EntryKind::Method;
  /// The term under which the entry was created.
  Time T = 0;
  /// The application command (Method entries).
  MethodId Method = 0;
  /// The configuration in effect *after* this entry: a Reconfig entry's
  /// new configuration, or the inherited one for Method entries.
  Config Conf;

  bool operator==(const Entry &RHS) const {
    return Kind == RHS.Kind && T == RHS.T && Method == RHS.Method &&
           Conf == RHS.Conf;
  }
};

/// Message discriminator.
enum class MsgKind : uint8_t {
  ElectReq,  ///< Candidate -> replica: vote request (carries the log).
  ElectAck,  ///< Replica -> candidate: vote granted.
  CommitReq, ///< Leader -> replica: replicate my log (AppendEntries).
  CommitAck, ///< Replica -> leader: log of length Len accepted.
};

const char *msgKindName(MsgKind Kind);

/// A network message. Value-semantic; the network holds them in a sent
/// multiset from which the scheduler picks deliveries in any order.
struct Msg {
  MsgKind Kind = MsgKind::ElectReq;
  NodeId From = InvalidNodeId;
  NodeId To = InvalidNodeId;
  /// The round's timestamp (term).
  Time T = 0;
  /// CommitAck: accepted log length. CommitReq: sender's commit index.
  size_t Len = 0;
  /// ElectReq/CommitReq: the sender's full log.
  std::vector<Entry> Log;

  std::string str() const;
};

} // namespace raft
} // namespace adore

#endif // ADORE_RAFT_MESSAGE_H
