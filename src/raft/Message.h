//===- raft/Message.h - Network messages ----------------------*- C++ -*-===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four message types of the network-based Raft specification
/// (Fig. 13): election requests/acknowledgements and commit
/// requests/acknowledgements. Following the paper's simplified protocol,
/// requests carry the sender's full log (a candidate ships its log for
/// the up-to-date check; a leader ships its log for wholesale adoption).
///
//===----------------------------------------------------------------------===//

#ifndef ADORE_RAFT_MESSAGE_H
#define ADORE_RAFT_MESSAGE_H

#include "adore/Config.h"
#include "support/Ids.h"

#include <cassert>
#include <string>
#include <vector>

namespace adore {
namespace raft {

/// What a log slot holds.
enum class EntryKind : uint8_t {
  Method,   ///< An application command.
  Reconfig, ///< A configuration change (takes effect on log entry).
};

//===----------------------------------------------------------------------===//
// Shared log helpers
//===----------------------------------------------------------------------===//
//
// Both protocol implementations — the spec-level raft::RaftSystem and the
// executable core::RaftCore — need the same three log judgments: the
// voting up-to-date comparison, the last log term, and the configuration
// in force after a prefix. They are defined once here as templates over
// the entry type; each entry type provides an ADL-visible entryTerm()
// accessor (the spec entry names its term T, the executable one Term).

/// Raft's voting comparison (§5.4.1) on (last term, length) summaries:
/// true iff a log ending in \p LastTermA with \p LenA entries is at least
/// as up-to-date as one ending in \p LastTermB with \p LenB entries.
/// Exact ties — including two empty logs — compare as up-to-date, so a
/// replica may vote for a candidate whose log equals its own.
inline bool logAtLeastAsUpToDate(Time LastTermA, size_t LenA,
                                 Time LastTermB, size_t LenB) {
  if (LastTermA != LastTermB)
    return LastTermA > LastTermB;
  return LenA >= LenB;
}

/// Term of the last entry of \p Log; 0 for the empty log.
template <typename EntryT>
Time lastLogTerm(const std::vector<EntryT> &Log) {
  return Log.empty() ? 0 : entryTerm(Log.back());
}

/// Full-log form of the up-to-date comparison: true iff \p A is at least
/// as up-to-date as \p B.
template <typename EntryA, typename EntryB>
bool logUpToDate(const std::vector<EntryA> &A, const std::vector<EntryB> &B) {
  return logAtLeastAsUpToDate(lastLogTerm(A), A.size(), lastLogTerm(B),
                              B.size());
}

/// The configuration in force after the first \p Len entries of \p Log
/// under hot semantics (a Reconfig entry acts upon insertion): the newest
/// Reconfig entry in the prefix wins, \p Initial if there is none.
template <typename EntryT>
Config configOfPrefix(const std::vector<EntryT> &Log, size_t Len,
                      const Config &Initial) {
  assert(Len <= Log.size() && "prefix out of range");
  for (size_t I = Len; I > 0; --I)
    if (Log[I - 1].Kind == EntryKind::Reconfig)
      return Log[I - 1].Conf;
  return Initial;
}

/// One slot of a replica's log.
struct Entry {
  EntryKind Kind = EntryKind::Method;
  /// The term under which the entry was created.
  Time T = 0;
  /// The application command (Method entries).
  MethodId Method = 0;
  /// The configuration in effect *after* this entry: a Reconfig entry's
  /// new configuration, or the inherited one for Method entries.
  Config Conf;

  bool operator==(const Entry &RHS) const {
    return Kind == RHS.Kind && T == RHS.T && Method == RHS.Method &&
           Conf == RHS.Conf;
  }
};

/// ADL hook for the shared log helpers above.
inline Time entryTerm(const Entry &E) { return E.T; }

/// Message discriminator.
enum class MsgKind : uint8_t {
  ElectReq,  ///< Candidate -> replica: vote request (carries the log).
  ElectAck,  ///< Replica -> candidate: vote granted.
  CommitReq, ///< Leader -> replica: replicate my log (AppendEntries).
  CommitAck, ///< Replica -> leader: log of length Len accepted.
};

const char *msgKindName(MsgKind Kind);

/// A network message. Value-semantic; the network holds them in a sent
/// multiset from which the scheduler picks deliveries in any order.
struct Msg {
  MsgKind Kind = MsgKind::ElectReq;
  NodeId From = InvalidNodeId;
  NodeId To = InvalidNodeId;
  /// The round's timestamp (term).
  Time T = 0;
  /// CommitAck: accepted log length. CommitReq: sender's commit index.
  size_t Len = 0;
  /// ElectReq/CommitReq: the sender's full log.
  std::vector<Entry> Log;

  std::string str() const;
};

} // namespace raft
} // namespace adore

#endif // ADORE_RAFT_MESSAGE_H
