//===- raft/SRaft.cpp - Simplified synchronous Raft driver -----------------===//
//
// Part of the Adore reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "raft/SRaft.h"

using namespace adore;
using namespace adore::raft;

std::optional<bool> SRaftDriver::deliverMatching(MsgKind Kind, NodeId From,
                                                 NodeId To, Time T) {
  const std::vector<Msg> &Pending = Sys.pending();
  for (size_t I = 0; I != Pending.size(); ++I) {
    const Msg &M = Pending[I];
    if (M.Kind == Kind && M.From == From && M.To == To && M.T == T)
      return Sys.deliver(I);
  }
  return std::nullopt;
}

bool SRaftDriver::electRound(NodeId Nid, const NodeSet &Voters) {
  Sys.elect(Nid);
  Time T = Sys.server(Nid).CurTime;
  // Deliver the round's requests to the chosen voters, then their acks
  // back to the candidate, atomically.
  for (NodeId Voter : Voters) {
    if (Voter == Nid)
      continue;
    deliverMatching(MsgKind::ElectReq, Nid, Voter, T);
  }
  for (NodeId Voter : Voters) {
    if (Voter == Nid)
      continue;
    deliverMatching(MsgKind::ElectAck, Voter, Nid, T);
  }
  // The rest of the round is lost.
  Sys.dropPendingIf([&](const Msg &M) {
    return M.T == T && ((M.Kind == MsgKind::ElectReq && M.From == Nid) ||
                        (M.Kind == MsgKind::ElectAck && M.To == Nid));
  });
  return Sys.isLeader(Nid);
}

size_t SRaftDriver::commitRound(NodeId Nid, const NodeSet &Ackers) {
  if (!Sys.startCommit(Nid))
    return Sys.server(Nid).CommitIndex;
  Time T = Sys.server(Nid).CurTime;
  size_t Len = Sys.log(Nid).size();
  for (NodeId Acker : Ackers) {
    if (Acker == Nid)
      continue;
    deliverMatching(MsgKind::CommitReq, Nid, Acker, T);
  }
  for (NodeId Acker : Ackers) {
    if (Acker == Nid)
      continue;
    deliverMatching(MsgKind::CommitAck, Acker, Nid, T);
  }
  Sys.dropPendingIf([&](const Msg &M) {
    if (M.T != T)
      return false;
    if (M.Kind == MsgKind::CommitReq && M.From == Nid &&
        M.Log.size() == Len)
      return true;
    return M.Kind == MsgKind::CommitAck && M.To == Nid;
  });
  return Sys.server(Nid).CommitIndex;
}
