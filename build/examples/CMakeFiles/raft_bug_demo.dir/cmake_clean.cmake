file(REMOVE_RECURSE
  "CMakeFiles/raft_bug_demo.dir/raft_bug_demo.cpp.o"
  "CMakeFiles/raft_bug_demo.dir/raft_bug_demo.cpp.o.d"
  "raft_bug_demo"
  "raft_bug_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raft_bug_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
