# Empty dependencies file for raft_bug_demo.
# This may be replaced when dependencies are built.
