
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reconfig_styles.cpp" "examples/CMakeFiles/reconfig_styles.dir/reconfig_styles.cpp.o" "gcc" "examples/CMakeFiles/reconfig_styles.dir/reconfig_styles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adore/CMakeFiles/adore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/adore_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ado/CMakeFiles/adore_ado.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/adore_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/refine/CMakeFiles/adore_refine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adore_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/adore_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
