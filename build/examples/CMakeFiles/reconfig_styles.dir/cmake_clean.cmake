file(REMOVE_RECURSE
  "CMakeFiles/reconfig_styles.dir/reconfig_styles.cpp.o"
  "CMakeFiles/reconfig_styles.dir/reconfig_styles.cpp.o.d"
  "reconfig_styles"
  "reconfig_styles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconfig_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
