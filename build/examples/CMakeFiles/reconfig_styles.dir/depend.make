# Empty dependencies file for reconfig_styles.
# This may be replaced when dependencies are built.
