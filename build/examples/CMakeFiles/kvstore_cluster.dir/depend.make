# Empty dependencies file for kvstore_cluster.
# This may be replaced when dependencies are built.
