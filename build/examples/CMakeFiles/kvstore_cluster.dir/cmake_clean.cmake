file(REMOVE_RECURSE
  "CMakeFiles/kvstore_cluster.dir/kvstore_cluster.cpp.o"
  "CMakeFiles/kvstore_cluster.dir/kvstore_cluster.cpp.o.d"
  "kvstore_cluster"
  "kvstore_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
