file(REMOVE_RECURSE
  "../bench/bench_schemes"
  "../bench/bench_schemes.pdb"
  "CMakeFiles/bench_schemes.dir/bench_schemes.cpp.o"
  "CMakeFiles/bench_schemes.dir/bench_schemes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
