file(REMOVE_RECURSE
  "../bench/bench_availability"
  "../bench/bench_availability.pdb"
  "CMakeFiles/bench_availability.dir/bench_availability.cpp.o"
  "CMakeFiles/bench_availability.dir/bench_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
