# Empty dependencies file for bench_fig16_reconfig_latency.
# This may be replaced when dependencies are built.
