file(REMOVE_RECURSE
  "../bench/bench_effort_statespace"
  "../bench/bench_effort_statespace.pdb"
  "CMakeFiles/bench_effort_statespace.dir/bench_effort_statespace.cpp.o"
  "CMakeFiles/bench_effort_statespace.dir/bench_effort_statespace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effort_statespace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
