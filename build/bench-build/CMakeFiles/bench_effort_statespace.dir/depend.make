# Empty dependencies file for bench_effort_statespace.
# This may be replaced when dependencies are built.
