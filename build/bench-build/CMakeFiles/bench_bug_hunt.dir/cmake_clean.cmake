file(REMOVE_RECURSE
  "../bench/bench_bug_hunt"
  "../bench/bench_bug_hunt.pdb"
  "CMakeFiles/bench_bug_hunt.dir/bench_bug_hunt.cpp.o"
  "CMakeFiles/bench_bug_hunt.dir/bench_bug_hunt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
