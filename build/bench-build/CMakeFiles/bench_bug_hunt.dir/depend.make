# Empty dependencies file for bench_bug_hunt.
# This may be replaced when dependencies are built.
