# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/scheme_test[1]_include.cmake")
include("/root/repo/build/tests/cache_tree_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/ado_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/stop_the_world_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/alpha_reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_election_test[1]_include.cmake")
