# Empty dependencies file for ado_test.
# This may be replaced when dependencies are built.
