file(REMOVE_RECURSE
  "CMakeFiles/ado_test.dir/AdoTest.cpp.o"
  "CMakeFiles/ado_test.dir/AdoTest.cpp.o.d"
  "ado_test"
  "ado_test.pdb"
  "ado_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ado_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
