file(REMOVE_RECURSE
  "CMakeFiles/stop_the_world_test.dir/StopTheWorldTest.cpp.o"
  "CMakeFiles/stop_the_world_test.dir/StopTheWorldTest.cpp.o.d"
  "stop_the_world_test"
  "stop_the_world_test.pdb"
  "stop_the_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stop_the_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
