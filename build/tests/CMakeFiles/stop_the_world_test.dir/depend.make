# Empty dependencies file for stop_the_world_test.
# This may be replaced when dependencies are built.
