# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for stop_the_world_test.
