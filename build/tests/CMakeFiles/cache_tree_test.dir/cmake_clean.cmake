file(REMOVE_RECURSE
  "CMakeFiles/cache_tree_test.dir/CacheTreeTest.cpp.o"
  "CMakeFiles/cache_tree_test.dir/CacheTreeTest.cpp.o.d"
  "cache_tree_test"
  "cache_tree_test.pdb"
  "cache_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
