file(REMOVE_RECURSE
  "CMakeFiles/alpha_reconfig_test.dir/AlphaReconfigTest.cpp.o"
  "CMakeFiles/alpha_reconfig_test.dir/AlphaReconfigTest.cpp.o.d"
  "alpha_reconfig_test"
  "alpha_reconfig_test.pdb"
  "alpha_reconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_reconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
