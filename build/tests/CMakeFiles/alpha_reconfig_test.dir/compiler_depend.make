# Empty compiler generated dependencies file for alpha_reconfig_test.
# This may be replaced when dependencies are built.
