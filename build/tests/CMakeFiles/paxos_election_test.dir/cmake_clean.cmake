file(REMOVE_RECURSE
  "CMakeFiles/paxos_election_test.dir/PaxosElectionTest.cpp.o"
  "CMakeFiles/paxos_election_test.dir/PaxosElectionTest.cpp.o.d"
  "paxos_election_test"
  "paxos_election_test.pdb"
  "paxos_election_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paxos_election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
