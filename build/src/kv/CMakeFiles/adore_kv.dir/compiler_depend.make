# Empty compiler generated dependencies file for adore_kv.
# This may be replaced when dependencies are built.
