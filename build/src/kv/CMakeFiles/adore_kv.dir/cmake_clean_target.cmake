file(REMOVE_RECURSE
  "libadore_kv.a"
)
