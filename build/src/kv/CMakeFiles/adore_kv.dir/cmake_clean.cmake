file(REMOVE_RECURSE
  "CMakeFiles/adore_kv.dir/KvStore.cpp.o"
  "CMakeFiles/adore_kv.dir/KvStore.cpp.o.d"
  "libadore_kv.a"
  "libadore_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
