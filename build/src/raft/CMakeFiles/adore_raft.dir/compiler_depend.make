# Empty compiler generated dependencies file for adore_raft.
# This may be replaced when dependencies are built.
