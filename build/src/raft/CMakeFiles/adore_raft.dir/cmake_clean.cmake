file(REMOVE_RECURSE
  "CMakeFiles/adore_raft.dir/RaftSystem.cpp.o"
  "CMakeFiles/adore_raft.dir/RaftSystem.cpp.o.d"
  "CMakeFiles/adore_raft.dir/SRaft.cpp.o"
  "CMakeFiles/adore_raft.dir/SRaft.cpp.o.d"
  "libadore_raft.a"
  "libadore_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
