file(REMOVE_RECURSE
  "libadore_raft.a"
)
