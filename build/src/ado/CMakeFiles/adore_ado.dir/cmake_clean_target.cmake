file(REMOVE_RECURSE
  "libadore_ado.a"
)
