file(REMOVE_RECURSE
  "CMakeFiles/adore_ado.dir/Ado.cpp.o"
  "CMakeFiles/adore_ado.dir/Ado.cpp.o.d"
  "libadore_ado.a"
  "libadore_ado.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_ado.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
