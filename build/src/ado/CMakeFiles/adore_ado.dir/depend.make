# Empty dependencies file for adore_ado.
# This may be replaced when dependencies are built.
