file(REMOVE_RECURSE
  "CMakeFiles/adore_support.dir/NodeSet.cpp.o"
  "CMakeFiles/adore_support.dir/NodeSet.cpp.o.d"
  "libadore_support.a"
  "libadore_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
