file(REMOVE_RECURSE
  "libadore_support.a"
)
