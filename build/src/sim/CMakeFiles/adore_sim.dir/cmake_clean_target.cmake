file(REMOVE_RECURSE
  "libadore_sim.a"
)
