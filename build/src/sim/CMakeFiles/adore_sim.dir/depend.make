# Empty dependencies file for adore_sim.
# This may be replaced when dependencies are built.
