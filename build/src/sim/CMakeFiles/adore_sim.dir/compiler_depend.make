# Empty compiler generated dependencies file for adore_sim.
# This may be replaced when dependencies are built.
