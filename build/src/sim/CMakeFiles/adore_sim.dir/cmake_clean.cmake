file(REMOVE_RECURSE
  "CMakeFiles/adore_sim.dir/Cluster.cpp.o"
  "CMakeFiles/adore_sim.dir/Cluster.cpp.o.d"
  "CMakeFiles/adore_sim.dir/RaftNode.cpp.o"
  "CMakeFiles/adore_sim.dir/RaftNode.cpp.o.d"
  "libadore_sim.a"
  "libadore_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
