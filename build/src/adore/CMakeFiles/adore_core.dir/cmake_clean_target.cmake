file(REMOVE_RECURSE
  "libadore_core.a"
)
