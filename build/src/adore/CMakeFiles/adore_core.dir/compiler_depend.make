# Empty compiler generated dependencies file for adore_core.
# This may be replaced when dependencies are built.
