file(REMOVE_RECURSE
  "CMakeFiles/adore_core.dir/Cache.cpp.o"
  "CMakeFiles/adore_core.dir/Cache.cpp.o.d"
  "CMakeFiles/adore_core.dir/CacheTree.cpp.o"
  "CMakeFiles/adore_core.dir/CacheTree.cpp.o.d"
  "CMakeFiles/adore_core.dir/DotExport.cpp.o"
  "CMakeFiles/adore_core.dir/DotExport.cpp.o.d"
  "CMakeFiles/adore_core.dir/Invariants.cpp.o"
  "CMakeFiles/adore_core.dir/Invariants.cpp.o.d"
  "CMakeFiles/adore_core.dir/Ops.cpp.o"
  "CMakeFiles/adore_core.dir/Ops.cpp.o.d"
  "CMakeFiles/adore_core.dir/Oracle.cpp.o"
  "CMakeFiles/adore_core.dir/Oracle.cpp.o.d"
  "CMakeFiles/adore_core.dir/Schemes.cpp.o"
  "CMakeFiles/adore_core.dir/Schemes.cpp.o.d"
  "CMakeFiles/adore_core.dir/State.cpp.o"
  "CMakeFiles/adore_core.dir/State.cpp.o.d"
  "libadore_core.a"
  "libadore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
