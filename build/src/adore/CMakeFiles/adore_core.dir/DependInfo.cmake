
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adore/Cache.cpp" "src/adore/CMakeFiles/adore_core.dir/Cache.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/Cache.cpp.o.d"
  "/root/repo/src/adore/CacheTree.cpp" "src/adore/CMakeFiles/adore_core.dir/CacheTree.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/CacheTree.cpp.o.d"
  "/root/repo/src/adore/DotExport.cpp" "src/adore/CMakeFiles/adore_core.dir/DotExport.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/DotExport.cpp.o.d"
  "/root/repo/src/adore/Invariants.cpp" "src/adore/CMakeFiles/adore_core.dir/Invariants.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/Invariants.cpp.o.d"
  "/root/repo/src/adore/Ops.cpp" "src/adore/CMakeFiles/adore_core.dir/Ops.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/Ops.cpp.o.d"
  "/root/repo/src/adore/Oracle.cpp" "src/adore/CMakeFiles/adore_core.dir/Oracle.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/Oracle.cpp.o.d"
  "/root/repo/src/adore/Schemes.cpp" "src/adore/CMakeFiles/adore_core.dir/Schemes.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/Schemes.cpp.o.d"
  "/root/repo/src/adore/State.cpp" "src/adore/CMakeFiles/adore_core.dir/State.cpp.o" "gcc" "src/adore/CMakeFiles/adore_core.dir/State.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/adore_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
