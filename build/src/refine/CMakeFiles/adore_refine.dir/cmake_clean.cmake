file(REMOVE_RECURSE
  "CMakeFiles/adore_refine.dir/RandomRuns.cpp.o"
  "CMakeFiles/adore_refine.dir/RandomRuns.cpp.o.d"
  "CMakeFiles/adore_refine.dir/Refinement.cpp.o"
  "CMakeFiles/adore_refine.dir/Refinement.cpp.o.d"
  "libadore_refine.a"
  "libadore_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adore_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
