# Empty dependencies file for adore_refine.
# This may be replaced when dependencies are built.
