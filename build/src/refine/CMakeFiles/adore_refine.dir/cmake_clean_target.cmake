file(REMOVE_RECURSE
  "libadore_refine.a"
)
