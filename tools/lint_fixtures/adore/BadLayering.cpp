// Fixture: a pure layer reaching into the threaded runtime.
#include "rt/Bus.h" // LINT-EXPECT: layering

namespace fixture {

int usesRuntime() { return 1; }

} // namespace fixture
