// Fixture: a decoder that bypasses codec::Cursor and reinterprets raw
// buffer memory.
#include <cstdint>
#include <string>

namespace fixture {

struct Blob {
  uint32_t Magic;
  uint64_t Seq;
};

// LINT-EXPECT: codec-discipline
static bool decodeBlob(const std::string &Bytes, Blob &Out) {
  if (Bytes.size() < sizeof(Blob))
    return false;
  // LINT-EXPECT: decode-cast
  Out = *reinterpret_cast<const Blob *>(Bytes.data());
  return true;
}

bool useDecode(const std::string &B) {
  Blob Out;
  return decodeBlob(B, Out);
}

} // namespace fixture
