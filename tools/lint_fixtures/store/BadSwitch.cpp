// Fixture: a defaulted switch over a protocol enum. The nested switch
// over a plain int may keep its default — only the protocol switch
// fires.
namespace fixture {

enum class RecordType { TermVote = 1, Append = 2, Truncate = 3, Commit = 4 };

// LINT-EXPECT: enum-switch-default
int classify(RecordType T, int Sub) {
  switch (T) {
  case RecordType::TermVote:
    switch (Sub) {
    case 0:
      return 10;
    default: // Fine: not a protocol enum.
      return 11;
    }
  case RecordType::Append:
    return 2;
  default: // Swallows future record types — exactly the bug.
    return 0;
  }
}

} // namespace fixture
