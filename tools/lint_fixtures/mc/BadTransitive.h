// Fixture: the violation arrives through an intermediate include —
// this file never names <mutex> itself.
#ifndef FIXTURE_MC_BADTRANSITIVE_H
#define FIXTURE_MC_BADTRANSITIVE_H

#include "support/Leaky.h" // LINT-EXPECT: purity-include

namespace fixture {

struct BadTransitive {
  Leaky L;
};

} // namespace fixture

#endif
