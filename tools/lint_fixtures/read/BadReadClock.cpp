// Fixture: read policy consulting the wall clock. Lease arithmetic
// and retry decisions must be functions of caller-supplied time — a
// tracker that reads steady_clock itself could never be replayed by
// the chaos rig or exhausted by the model checker, and a self-timed
// lease check is exactly the stale-read bug the protocol exists to
// prevent.
#include <chrono>

namespace fixture {

unsigned long readerTimesItsOwnLease() {
  // LINT-EXPECT: purity-token
  auto T = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<unsigned long>(T.count());
}

} // namespace fixture
