// Fixture: read policy reaching into a runtime. The tracker decides
// where a read goes and what a NACK means; hosts (sim, rt, chaos)
// move the bytes. A read file that includes rt has welded the policy
// to one runtime and made it untestable with scripted replies.
#include "rt/RtNode.h" // LINT-EXPECT: layering

namespace fixture {

int readerLeaksIntoRt() { return 1; }

} // namespace fixture
