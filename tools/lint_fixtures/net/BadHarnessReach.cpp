// Fixture: the socket layer reaching up into the harness layers it is
// supposed to sit below.

// LINT-EXPECT: layering
#include "chaos/RtRun.h"
// LINT-EXPECT: layering
#include "sim/Cluster.h"

namespace fixture {

int useHarness() { return 0; }

} // namespace fixture
