// Fixture: reinterpreting raw buffer memory in the net layer outside
// the allowlisted sockaddr seam.
#include <cstdint>
#include <string>

namespace fixture {

uint32_t peekHeader(const std::string &Bytes) {
  // LINT-EXPECT: decode-cast
  return *reinterpret_cast<const uint32_t *>(Bytes.data());
}

} // namespace fixture
