// Fixture: a net-layer frame parser that hand-rolls its byte reading
// instead of going through the shared bounds-checked codec.
#include <cstddef>
#include <string>

namespace fixture {

// LINT-EXPECT: codec-discipline
static bool parseFrameHeader(const std::string &Bytes, size_t &Len) {
  if (Bytes.size() < 4)
    return false;
  Len = static_cast<unsigned char>(Bytes[0]) |
        (static_cast<unsigned char>(Bytes[1]) << 8) |
        (static_cast<unsigned char>(Bytes[2]) << 16) |
        (static_cast<unsigned char>(Bytes[3]) << 24);
  return true;
}

bool useParse(const std::string &B) {
  size_t Len = 0;
  return parseFrameHeader(B, Len);
}

} // namespace fixture
