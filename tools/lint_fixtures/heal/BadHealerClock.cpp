// Fixture: a healer reading the wall clock. Backoff and cooldown
// decisions must be functions of the caller-supplied NowUs — a healer
// that consults steady_clock itself could never be replayed by the
// simulator or exhausted by the model checker.
#include <chrono>

namespace fixture {

unsigned long healerPeeksAtTheWallClock() {
  // LINT-EXPECT: purity-token
  auto T = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<unsigned long>(T.count());
}

} // namespace fixture
