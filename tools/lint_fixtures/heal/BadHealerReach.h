// Fixture: heal policy reaching into a runtime. The Healer proposes
// configurations; hosts (sim, rt, chaos) observe suspicions and commit
// reconfigs. A heal file that includes chaos/rt/sim has inverted that
// dependency and welded the policy to one runtime.
#include "chaos/Nemesis.h" // LINT-EXPECT: layering

namespace fixture {

int healerLeaksIntoChaos() { return 1; }

} // namespace fixture
