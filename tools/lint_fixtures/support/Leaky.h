// Fixture helper: a support header that (unlike the real support
// layer's pure pieces) drags in a mutex. Not a violation by itself —
// support is not a pure layer — but anything pure that includes it
// inherits the ban transitively.
#ifndef FIXTURE_SUPPORT_LEAKY_H
#define FIXTURE_SUPPORT_LEAKY_H

#include <mutex>

namespace fixture {

struct Leaky {
  std::mutex Mu;
};

} // namespace fixture

#endif
