// Fixture: a pure-layer header that pulls in threading machinery.
#ifndef FIXTURE_CORE_BADTHREAD_H
#define FIXTURE_CORE_BADTHREAD_H

#include <thread> // LINT-EXPECT: purity-include

namespace fixture {

struct BadThread {
  void spin() {
    std::thread T([] {}); // LINT-EXPECT: purity-token
    T.join();
  }
};

} // namespace fixture

#endif
