// Fixture: a pure consensus-layer header depending on the socket
// fabric — the core must stay hostable by the model checker, which has
// no network.
#ifndef FIXTURE_CORE_BADNETREACH_H
#define FIXTURE_CORE_BADNETREACH_H

// LINT-EXPECT: layering
#include "net/Framing.h"

namespace fixture {

inline int useNet() { return 0; }

} // namespace fixture

#endif // FIXTURE_CORE_BADNETREACH_H
