// Fixture: banned impurity tokens in a pure layer. Note the strings
// and comments below mention rand() and fopen() without tripping the
// linter — only real code should fire.
#include <chrono>
#include <cstdlib>

namespace fixture {

// A comment saying rand() must not count.
static const char *Doc = "call rand() and fopen() at your peril";

unsigned long badNow() {
  // LINT-EXPECT: purity-token
  auto T = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<unsigned long>(T.count()) + Doc[0];
}

int badEntropy() {
  return rand(); // LINT-EXPECT: purity-token
}

} // namespace fixture
