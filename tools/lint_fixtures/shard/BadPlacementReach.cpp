// Fixture: placement code reaching into a runtime. Routing must stay a
// pure function of (key, pool map) so any client can compute it; a
// shard file that includes sim/rt/store has smuggled a runtime
// dependency into the algebra.
#include "sim/Cluster.h" // LINT-EXPECT: layering

namespace fixture {

int placementLeaksIntoSim() { return 1; }

} // namespace fixture
