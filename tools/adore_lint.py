#!/usr/bin/env python3
"""adore_lint: layering and purity linter for the Adore reproduction.

The repo's strongest guarantees are structural, not dynamic: the
sans-I/O layers (src/core, src/adore, src/mc, src/audit, src/shard,
src/heal, src/read) must stay pure state machines the model checker can
exhaust
(shard is the placement/pool-map algebra: routing decisions must be
computable by any client without touching a runtime; heal is the
self-healing policy: reconfig decisions must be replayable from a
scripted clock), every wire/WAL decode must
go through the bounds-checked readers in core/Codec.h, and switches over
protocol enums must stay exhaustive so -Werror=switch keeps guarding
effect handling. Sanitizers and chaos sweeps probe executed paths;
this tool checks the rules on every path, mechanically, from the
compile database and the include graph.

Rules (ids are stable; fixtures assert each one fires):

  layering          a pure-layer file includes (directly or through repo
                    headers) a header from an I/O layer (rt/, store/,
                    sim/, chaos/, kv/, net/); or a net/ file reaches up
                    into the harness layers (sim/, chaos/, kv/) — the
                    socket fabric must stay a neutral seam below them.
  purity-include    a pure-layer file pulls in a threading, clock, or
                    POSIX I/O system header (directly or transitively).
  purity-token      a pure-layer file calls a banned impurity: rand,
                    srand, time(), fopen, std::thread/this_thread, or a
                    std::chrono clock.
  decode-cast       reinterpret_cast in core/adore/mc/audit/rt/store —
                    decode paths must parse bytes through codec::Cursor,
                    never reinterpret buffer memory.
  codec-discipline  an rt/ or store/ file defines a decode/parse/scan
                    routine without including core/Codec.h: raw-pointer
                    decoding instead of the shared bounds-checked reader.
  enum-switch-default
                    a switch whose cases name a protocol enum
                    (Effect::Kind, Msg::Kind, MsgKind, RecordType,
                    EntryKind, TimerId, Scenario) has a default: label,
                    forfeiting the -Werror=switch exhaustiveness
                    guarantee.

Seams: files listed in ALLOWLIST are deliberate owners of otherwise
banned machinery (the parallel exploration driver owns threads and the
wall clock). They are exempt from the listed rules and are treated as
opaque in the transitive include walk — reaching a seam is fine;
*being* one is reviewed here, in this file.

Usage:
  adore_lint.py --compile-db build/compile_commands.json [--root .]
  adore_lint.py --self-test [--root .]   # run the violation fixtures

Exit status: 0 when clean (or self-test passes), 1 on findings.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Policy
# --------------------------------------------------------------------------

# Layers that must stay sans-I/O pure: no threads, no clocks, no files,
# no sockets, no dependence on the executable runtimes. shard (jump-hash
# placement + pool map + sans-I/O routing client) earns its place here:
# a router that secretly depended on rt/store/sim could not be embedded
# in arbitrary clients or replayed deterministically by the chaos rig.
# heal (the self-healing reconfiguration policy) likewise: every heal
# decision must be a function of (clock value, config, suspicions) so
# the sim can replay it and tests can drive it with scripted time.
# read (the linearizable-read tier selection and client-side read
# tracker) is pure for the same reason as shard: any client must be
# able to run the retry/target policy without a runtime, and the chaos
# rig must be able to replay it deterministically.
PURE_LAYERS = {"core", "adore", "mc", "audit", "shard", "heal", "read"}

# Layers a pure layer may never include from.
IMPURE_LAYERS = {"rt", "store", "sim", "chaos", "kv", "net"}

# The socket layer sits below the runtimes: it may use rt's Transport
# interface and the shared codec, but must never reach up into the
# executable harnesses (sim's deterministic world or chaos's drivers).
# A transport that knew about the test rigs above it could not be the
# neutral seam the whole rt/chaos/bench stack swaps out.
NET_FORBIDDEN_REACH = {"sim", "chaos", "kv"}

# System headers that smuggle threads, clocks, or OS I/O into a pure
# layer. <cstdio> is deliberately absent: snprintf-style formatting is
# pure; fopen is caught as a token instead.
BANNED_SYSTEM_HEADERS = {
    "thread", "mutex", "shared_mutex", "condition_variable", "atomic",
    "barrier", "semaphore", "latch", "future", "stop_token",
    "filesystem", "fstream", "ctime", "time.h",
    "unistd.h", "fcntl.h", "poll.h", "sched.h", "pthread.h",
    "sys/stat.h", "sys/types.h", "sys/socket.h", "sys/mman.h",
    "sys/time.h", "sys/wait.h", "sys/uio.h", "netinet/in.h",
}

# Impurity tokens banned in pure layers (scanned with comments and
# string literals stripped).
BANNED_TOKENS = [
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bstd\s*::\s*thread\b"), "std::thread"),
    (re.compile(r"\bthis_thread\b"), "std::this_thread"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"(?<![\w:.>])time\s*\("), "time()"),
    (re.compile(r"\bfopen\s*\("), "fopen()"),
]

# Layers where reinterpret_cast is banned outright (pure layers plus
# those that decode untrusted bytes).
NO_REINTERPRET_LAYERS = PURE_LAYERS | {"rt", "store", "net"}

# Decoder-defining files in these layers must include core/Codec.h.
CODEC_LAYERS = {"rt", "store", "net"}
DECODER_DEF_RE = re.compile(
    r"^[ \t]*(?:static[ \t]+)?(?:bool|SegmentScan)[ \t]+"
    r"(?:\w+::)*(?:decode|parse|scan)\w*[ \t]*\([^;{}]*\)\s*\{",
    re.MULTILINE)

# Enums whose switches must stay exhaustive (no default:). These are the
# protocol surfaces where a silently-absorbed new variant is a bug —
# PR 5's dropped-Persist lesson, made mechanical.
PROTOCOL_ENUM_CASE_RE = re.compile(
    r"\bcase\s+[\w:]*(?:Effect::Kind|Msg::Kind|MsgKind|RecordType|"
    r"EntryKind|TimerId|Scenario)::")

# (relative path under src/) -> set of rule ids the file may violate.
# Every entry is a reviewed architectural seam; add a justification.
ALLOWLIST = {
    # The exploration *driver*: its deterministic parallel mode owns
    # worker threads, barriers, and a progress clock by design. The
    # models it explores stay pure; the engine is the host seam.
    "mc/Engine.h": {"purity-include", "purity-token"},
    # The socket syscall boundary: bind/connect/accept require the
    # sockaddr aliasing dance the POSIX API forces. The casts are
    # confined to the asSockaddr helpers; every byte that comes OFF the
    # wire still parses through codec::Cursor (net/Framing.h).
    "net/TcpTransport.cpp": {"decode-cast"},
}

SELF_TEST_EXPECT_RE = re.compile(r"//\s*LINT-EXPECT:\s*([\w-]+)")


# --------------------------------------------------------------------------
# Source handling
# --------------------------------------------------------------------------

def strip_comments_and_strings(text, keep_strings=False):
    """Blanks out comments and (unless keep_strings) string/char
    literals, preserving line structure so reported line numbers stay
    true. keep_strings=True is used for #include parsing, where the
    "quoted/path.h" *is* a string."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            if keep_strings:
                out.append(text[i:min(j + 1, n)])
            i = min(j + 1, n)
        else:
            out.append(c)
            i += 1
    return "".join(out)


INCLUDE_RE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]',
                        re.MULTILINE)


class SourceFile:
    def __init__(self, rel, text):
        self.rel = rel                      # path relative to src/
        self.layer = rel.split("/", 1)[0] if "/" in rel else ""
        self.text = text
        self.stripped = strip_comments_and_strings(text)
        # Includes come from a comments-only strip: the quoted form's
        # path is a string literal the full strip would blank out.
        directives = strip_comments_and_strings(text, keep_strings=True)
        self.quoted_includes = []           # [(line, path)]
        self.system_includes = []           # [(line, header)]
        for m in INCLUDE_RE.finditer(directives):
            line = directives.count("\n", 0, m.start()) + 1
            if m.group(1) == '"':
                self.quoted_includes.append((line, m.group(2)))
            else:
                self.system_includes.append((line, m.group(2)))

    def allowlisted(self, rule):
        return rule in ALLOWLIST.get(self.rel, set())


def load_tree(src_root):
    """Loads every C++ file under src_root, keyed by path relative to
    it (the repo's include paths are all relative to src/)."""
    files = {}
    for dirpath, _, names in os.walk(src_root):
        for name in names:
            if not name.endswith((".h", ".hpp", ".cc", ".cpp")):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, src_root).replace(os.sep, "/")
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                files[rel] = SourceFile(rel, f.read())
    return files


def transitive_repo_includes(files, rel):
    """All repo files reachable from `rel` through quoted includes.
    Allowlisted seams are returned when reached but not descended into:
    what they pull in is their reviewed business, not their includers'."""
    seen = set()
    chain = {}  # reached file -> (includer, line)
    stack = [rel]
    while stack:
        cur = stack.pop()
        src = files.get(cur)
        if src is None:
            continue
        for line, inc in src.quoted_includes:
            if inc in seen or inc == rel:
                continue
            seen.add(inc)
            chain[inc] = (cur, line)
            if inc in files and not ALLOWLIST.get(inc):
                stack.append(inc)
    return seen, chain


def chain_str(chain, target, origin):
    hops = [target]
    cur = target
    while cur in chain and chain[cur][0] != origin:
        cur = chain[cur][0]
        hops.append(cur)
    hops.append(origin)
    return " <- ".join(reversed(hops))


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, rel, line, message):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.message = message

    def __str__(self):
        return "src/%s:%d: [%s] %s" % (self.rel, self.line, self.rule,
                                       self.message)


def check_layering(src, files, findings):
    if src.layer == "net":
        _check_net_reach(src, files, findings)
        return
    if src.layer not in PURE_LAYERS:
        return
    for line, inc in src.quoted_includes:
        top = inc.split("/", 1)[0]
        if top in IMPURE_LAYERS:
            findings.append(Finding(
                "layering", src.rel, line,
                "pure layer '%s' includes \"%s\" from I/O layer '%s'"
                % (src.layer, inc, top)))
    reach, chain = transitive_repo_includes(files, src.rel)
    for inc in sorted(reach):
        top = inc.split("/", 1)[0]
        if top in IMPURE_LAYERS and (src.rel, inc) not in _direct_pairs(src):
            if inc in [i for _, i in src.quoted_includes]:
                continue  # already reported as direct
            findings.append(Finding(
                "layering", src.rel, 1,
                "pure layer '%s' transitively includes \"%s\" (%s)"
                % (src.layer, inc, chain_str(chain, inc, src.rel))))


def _check_net_reach(src, files, findings):
    """net sits below the runtimes: reaching up into sim/chaos/kv would
    couple the neutral transport seam to the harnesses built on it."""
    direct = {i for _, i in src.quoted_includes}
    for line, inc in src.quoted_includes:
        top = inc.split("/", 1)[0]
        if top in NET_FORBIDDEN_REACH:
            findings.append(Finding(
                "layering", src.rel, line,
                "net layer includes \"%s\" from harness layer '%s'"
                % (inc, top)))
    reach, chain = transitive_repo_includes(files, src.rel)
    for inc in sorted(reach):
        top = inc.split("/", 1)[0]
        if top in NET_FORBIDDEN_REACH and inc not in direct:
            findings.append(Finding(
                "layering", src.rel, 1,
                "net layer transitively includes \"%s\" (%s)"
                % (inc, chain_str(chain, inc, src.rel))))


def _direct_pairs(src):
    return {(src.rel, i) for _, i in src.quoted_includes}


def check_purity_includes(src, files, findings):
    if src.layer not in PURE_LAYERS or src.allowlisted("purity-include"):
        return
    for line, header in src.system_includes:
        if header in BANNED_SYSTEM_HEADERS:
            findings.append(Finding(
                "purity-include", src.rel, line,
                "pure layer '%s' includes <%s>" % (src.layer, header)))
    reach, chain = transitive_repo_includes(files, src.rel)
    for inc in sorted(reach):
        via = files.get(inc)
        if via is None or ALLOWLIST.get(inc):
            continue
        for line, header in via.system_includes:
            if header in BANNED_SYSTEM_HEADERS:
                findings.append(Finding(
                    "purity-include", src.rel, 1,
                    "pure layer '%s' pulls in <%s> transitively (%s:%d)"
                    % (src.layer, header, chain_str(chain, inc, src.rel),
                       line)))


def check_purity_tokens(src, findings):
    if src.layer not in PURE_LAYERS or src.allowlisted("purity-token"):
        return
    for regex, what in BANNED_TOKENS:
        for m in regex.finditer(src.stripped):
            line = src.stripped.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                "purity-token", src.rel, line,
                "banned impurity %s in pure layer '%s'" % (what, src.layer)))


def check_decode_cast(src, findings):
    if src.layer not in NO_REINTERPRET_LAYERS:
        return
    if src.allowlisted("decode-cast"):
        return
    for m in re.finditer(r"\breinterpret_cast\b", src.stripped):
        line = src.stripped.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            "decode-cast", src.rel, line,
            "reinterpret_cast in layer '%s': decode through codec::Cursor, "
            "not raw memory reinterpretation" % src.layer))


def check_codec_discipline(src, files, findings):
    if src.layer not in CODEC_LAYERS or src.allowlisted("codec-discipline"):
        return
    m = DECODER_DEF_RE.search(src.stripped)
    if not m:
        return
    reach, _ = transitive_repo_includes(files, src.rel)
    direct = {i for _, i in src.quoted_includes}
    if "core/Codec.h" in reach or "core/Codec.h" in direct:
        return
    line = src.stripped.count("\n", 0, m.start()) + 1
    findings.append(Finding(
        "codec-discipline", src.rel, line,
        "defines a decode/parse/scan routine without core/Codec.h: wire "
        "and WAL bytes must go through the bounds-checked codec readers"))


def _strip_nested_switches(body):
    """Removes nested switch bodies so their case/default labels don't
    leak into the enclosing switch's analysis."""
    out = body
    while True:
        m = re.search(r"\bswitch\b", out)
        if not m:
            return out
        brace = out.find("{", m.end())
        if brace < 0:
            return out[:m.start()] + out[m.end():]
        depth, j = 0, brace
        while j < len(out):
            if out[j] == "{":
                depth += 1
            elif out[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        out = out[:m.start()] + out[j + 1:]


def check_enum_switch_default(src, findings):
    if src.allowlisted("enum-switch-default"):
        return
    text = src.stripped
    for m in re.finditer(r"\bswitch\b", text):
        brace = text.find("{", m.end())
        if brace < 0:
            continue
        depth, j = 0, brace
        while j < len(text):
            if text[j] == "{":
                depth += 1
            elif text[j] == "}":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        body = text[brace:j + 1]
        # Only this switch's own labels: blank out nested switches.
        own = _strip_nested_switches(body[1:-1])
        if not PROTOCOL_ENUM_CASE_RE.search(own):
            continue
        dm = re.search(r"\bdefault\s*:", own)
        if dm:
            line = text.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                "enum-switch-default", src.rel, line,
                "switch over a protocol enum has a default: label; "
                "enumerate every variant so -Werror=switch guards "
                "additions"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def lint(files):
    findings = []
    for rel in sorted(files):
        src = files[rel]
        check_layering(src, files, findings)
        check_purity_includes(src, files, findings)
        check_purity_tokens(src, findings)
        check_decode_cast(src, findings)
        check_codec_discipline(src, files, findings)
        check_enum_switch_default(src, findings)
    return findings


def verify_compile_db(path, src_root):
    """Sanity: every TU in the compile database that lives under src/
    must be present in the scanned tree (a TU the linter can't see is a
    hole in the guarantee)."""
    with open(path, "r", encoding="utf-8") as f:
        entries = json.load(f)
    missing = []
    src_root = os.path.abspath(src_root)
    tus = 0
    for entry in entries:
        fn = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        if not fn.startswith(src_root + os.sep):
            continue
        tus += 1
        rel = os.path.relpath(fn, src_root).replace(os.sep, "/")
        missing.append(rel) if rel not in LOADED_RELS else None
    return tus, missing


LOADED_RELS = set()


def run_tree(args):
    src_root = os.path.join(args.root, "src")
    files = load_tree(src_root)
    LOADED_RELS.update(files)
    tus = 0
    if args.compile_db:
        tus, missing = verify_compile_db(args.compile_db, src_root)
        if missing:
            for rel in missing:
                print("adore_lint: TU %s is in the compile database but "
                      "was not scanned" % rel, file=sys.stderr)
            return 1
    findings = lint(files)
    for f in findings:
        print(f)
    print("adore_lint: %d file(s), %d TU(s) from compile db, %d finding(s)"
          % (len(files), tus, len(findings)))
    return 1 if findings else 0


def run_self_test(args):
    fixture_root = os.path.join(args.root, "tools", "lint_fixtures")
    files = load_tree(fixture_root)
    if not files:
        print("adore_lint: no fixtures under %s" % fixture_root,
              file=sys.stderr)
        return 1
    expected = set()
    for rel, src in files.items():
        for m in SELF_TEST_EXPECT_RE.finditer(src.text):
            expected.add((m.group(1), rel))
    actual = {(f.rule, f.rel) for f in lint(files)}
    ok = True
    for rule, rel in sorted(expected - actual):
        print("self-test: expected [%s] in %s but the rule did not fire"
              % (rule, rel))
        ok = False
    for rule, rel in sorted(actual - expected):
        print("self-test: unexpected [%s] in %s" % (rule, rel))
        ok = False
    rules_fired = {r for r, _ in actual}
    all_rules = {"layering", "purity-include", "purity-token",
                 "decode-cast", "codec-discipline", "enum-switch-default"}
    for rule in sorted(all_rules - rules_fired):
        print("self-test: no fixture exercises rule [%s]" % rule)
        ok = False
    print("adore_lint self-test: %d fixture file(s), %d finding(s), %s"
          % (len(files), len(actual), "PASS" if ok else "FAIL"))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=".",
                    help="repository root (contains src/)")
    ap.add_argument("--compile-db", default=None,
                    help="compile_commands.json for TU coverage checking")
    ap.add_argument("--self-test", action="store_true",
                    help="lint tools/lint_fixtures and check LINT-EXPECT "
                         "markers")
    args = ap.parse_args()
    if args.self_test:
        return run_self_test(args)
    return run_tree(args)


if __name__ == "__main__":
    sys.exit(main())
